//===- bench/bench_passes.cpp - E4: the verified passes (Fig. 11) ----------===//
//
// Regenerates the Fig. 11 result: every compilation pass of the pipeline
// satisfies the footprint-preserving simulation (Correct, Def. 10),
// checked by translation validation over a suite of client programs, and
// every stage preserves whole-program traces against the Clight source.
//
// Expected shape: all 12 passes validate on the whole suite.
//
//===----------------------------------------------------------------------===//

#include "BenchTable.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"
#include "validate/PassValidator.h"
#include "workload/Workloads.h"

#include <cstdio>
#include <map>

using namespace ccc;

namespace {
/// Exploration options shared by every run in this binary; Por is set
/// from the --no-por escape hatch in main.
ExploreOptions BaseOpts;
} // namespace
using namespace ccc::validate;

namespace {

struct Scenario {
  std::string Name;
  std::string Source;
  std::vector<std::string> Threads;
  bool NeedsLock;
};

std::vector<Scenario> suite() {
  return {
      {"arith",
       "void main() { int a = 9; int b = 4; print(a * b); print(a / b); "
       "print(a % b); print(a * 16); }",
       {"main"},
       false},
      {"loops",
       "void main() { int i = 0; int s = 0; while (i < 6) { if (i % 2 == "
       "0) { s = s + i * 3; } else { s = s - 1; } i = i + 1; } print(s); }",
       {"main"},
       false},
      {"calls",
       "int f(int x) { return x * x; } int g(int a, int b) { int r; r = "
       "f(a); return r + b; } void main() { int v; v = g(3, 4); print(v); "
       "}",
       {"main"},
       false},
      {"fig10c", workload::fig10cClientSource(), {"inc", "inc"}, true},
  };
}

} // namespace

int main(int argc, char **argv) {
  const benchtable::BenchFlags Flags = benchtable::parseBenchFlags(argc, argv);
  if (!Flags.Por)
    BaseOpts.Por = PorMode::Off;
  std::printf("E4 (Fig. 11): per-pass translation validation "
              "(footprint-preserving simulation, Defs. 2-3/10)\n\n");

  auto Suite = suite();
  // Aggregate per pass across the suite.
  std::map<std::string, PassResult> Agg;
  bool AllGood = true;

  for (const Scenario &Sc : Suite) {
    auto R = compiler::compileClightSource(Sc.Source);
    auto Results = validatePipeline(R, defaultSamples(*R.Clight));
    for (const PassResult &PR : Results) {
      PassResult &A = Agg[PR.PassName];
      A.PassName = PR.PassName;
      A.Holds = A.Holds && PR.Holds;
      if (!PR.Holds && A.FailReason.empty())
        A.FailReason = Sc.Name + "/" + PR.FailReason;
      A.EntriesChecked += PR.EntriesChecked;
      A.Obligations += PR.Obligations;
      A.ProductStates += PR.ProductStates;
      A.Millis += PR.Millis;
    }
  }

  benchtable::Table T({"pass", "validated", "entries", "obligations",
                       "product states", "ms"});
  benchtable::JsonLog Log;
  for (const std::string &Name : compiler::passNames()) {
    const PassResult &A = Agg[Name];
    AllGood = AllGood && A.Holds;
    T.addRow({Name, benchtable::yesNo(A.Holds),
              std::to_string(A.EntriesChecked),
              std::to_string(A.Obligations),
              std::to_string(A.ProductStates),
              benchtable::fmtMs(A.Millis)});
    Log.add("pass_validation",
            "{\"pass\":" + benchtable::jsonStr(Name) +
                ",\"validated\":" + (A.Holds ? "true" : "false") +
                ",\"entries\":" + std::to_string(A.EntriesChecked) +
                ",\"obligations\":" + std::to_string(A.Obligations) +
                ",\"product_states\":" + std::to_string(A.ProductStates) +
                ",\"ms\":" + std::to_string(A.Millis) + "}");
  }
  T.print();

  std::printf("\nwhole-program trace preservation per stage (vs Clight)\n\n");
  benchtable::Table T2({"scenario", "stages equal", "ms"});
  for (const Scenario &Sc : Suite) {
    benchtable::Timer Tm;
    auto R = compiler::compileClightSource(Sc.Source);
    auto traces = [&](unsigned Stage) {
      Program P;
      compiler::addStage(P, R, Stage, "client");
      if (Sc.NeedsLock)
        sync::addGammaLock(P);
      for (const std::string &E : Sc.Threads)
        P.addThread(E);
      P.link();
      return preemptiveTraces(P, BaseOpts);
    };
    TraceSet Src = traces(0);
    unsigned Equal = 0;
    for (unsigned Stage = 1; Stage < compiler::numStages(); ++Stage)
      if (equivTraces(traces(Stage), Src).Holds)
        ++Equal;
    bool Ok = Equal == compiler::numStages() - 1;
    AllGood = AllGood && Ok;
    T2.addRow({Sc.Name,
               std::to_string(Equal) + "/" +
                   std::to_string(compiler::numStages() - 1),
               benchtable::fmtMs(Tm.ms())});
    Log.add("trace_preservation",
            "{\"scenario\":" + benchtable::jsonStr(Sc.Name) +
                ",\"stages_equal\":" + std::to_string(Equal) +
                ",\"stages_total\":" +
                std::to_string(compiler::numStages() - 1) +
                ",\"ms\":" + std::to_string(Tm.ms()) + "}");
  }
  T2.print();

  std::printf("\nresult: %s — all %zu passes validate on the suite\n",
              AllGood ? "PASS" : "FAIL", compiler::passNames().size());
  if (!Log.write("BENCH_passes.json"))
    std::printf("warning: could not write BENCH_passes.json\n");
  else
    std::printf("machine-readable stats written to BENCH_passes.json\n");
  return AllGood ? 0 : 1;
}
