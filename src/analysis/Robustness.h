//===- analysis/Robustness.h - Model-generic robustness ---------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static SC-equivalence (robustness) analysis for x86 object modules,
/// parameterized by the declared memory model's *reordering table* — the
/// per-model statement of which instruction reorderings the hardware may
/// perform. The TSO instantiation is Owens' triangular-race criterion
/// (ECOOP 2010); the Relaxed instantiation adds a deferred-load criterion
/// for the IMM-style load reordering of MemModel::Relaxed.
///
/// Store axis (ReorderTable::StoresLinger — TSO and Relaxed): the only
/// behaviours a FIFO store buffer adds over SC come from a thread's
/// *plain* store lingering in the buffer while the same thread's later
/// load of a *different* shared location overtakes it. If every path from
/// a plain store to a shared location reaches an mfence or lock-prefixed
/// instruction (the buffer-draining points) before any load of a possibly
/// different shared location — and before control leaves the module — the
/// store buffer can always be flushed at the SC-equivalent point and
/// every buffered trace is SC-explainable.
///
/// Load axis (ReorderTable::LoadsDefer — Relaxed only): the Relaxed model
/// additionally lets a register load (`movl cell, %reg`) stay *pending*
/// past later instructions until the first dependent use. A pending load
/// crossing another shared access (to a possibly different cell), an
/// observable event, or the module boundary is a reordering the peer can
/// witness (LB and IRIW shapes); a load whose every path reaches a
/// dependent use of its destination register, a same-cell access, or a
/// drain point first is *completion-forced* there — the dependency (or
/// fence) certificate that makes the deferral unobservable. The dynamic
/// model's completion-forcing conflict gate is exactly the dual of the
/// kill rule used here.
///
/// Per entry point, the pass
///  1. builds the CFG from the flat X86Asm code stream (x86::successors),
///  2. runs a register abstract-value analysis so memory operands resolve
///     to a named global, the thread-private frame, or "unknown", and
///  3. propagates the *FIFO-ordered* pending (unfenced) shared stores —
///     and, under LoadsDefer, the pending deferable loads — along the
///     CFG, flagging reorderable pairs and accesses that escape the
///     module boundary unfenced.
///
/// The pending-store fact is order-aware: for each pending store s it
/// tracks the set of cells that *must* have been stored after s and are
/// still pending behind it in the buffer (its covers). A load of y only
/// races with a pending store s when no later pending store to y sits
/// behind s: with such a cover, either the covering store is still
/// buffered at the load (the load forwards from the buffer and never
/// reads memory) or — by FIFO order — s has already been flushed. This
/// is the store-order refinement that certifies the MP publication idiom
/// (store data; store flag; re-read flag) where the per-location
/// criterion could not.
///
/// The verdict is three-valued:
///  - Robust: every shared store (and, under LoadsDefer, every deferable
///    load) is covered by a drain or dependency on every path — emitted
///    with a per-site certificate. Certified modules may soundly run
///    under MemModel::SC, pruning the buffer/pending dimension of the
///    explorer's state space.
///  - NotRobust: a concrete witness path names an unfenced reorderable
///    pair, or an access that crosses the module boundary unfenced (the
///    caller may complete the pair; pi_lock's release store is the
///    canonical instance). NotRobust object modules can still be
///    *allowed* when an object-refinement check covers their weak
///    behaviours (Sec. 7.3: pi_lock refines gamma_lock).
///  - Unknown: an access target could not be resolved (loads used as
///    addresses, pointer arithmetic): no claim either way.
///
/// A module analyzed on its own is treated maximally conservatively: any
/// entry may be invoked by an unknown client with an arbitrary buffer,
/// any call leaves the module, any global may hold any value. Analyzing
/// a module *inside a closed program* (every module x86, every call site
/// visible) justifies three refinements, packaged as a RobustContext:
///  - Thread-exit discharge: an entry never named by any call/tailcall
///    anywhere only runs as a thread root, so its ret terminates the
///    thread — stores still buffered (and loads still pending) there
///    retire at thread exit with no subsequent same-thread access, and
///    get certificates instead of escape witnesses.
///  - Same-module call summaries: a call whose target resolves (under
///    the program's first-module-wins entry resolution) to another entry
///    of the same module inlines that entry's summarized drain / pending
///    / pre-drain-load effect instead of emitting an escape witness.
///    Tail calls and cross-module calls remain boundary escapes. (The
///    summaries cover the store axis only: pending *loads* escape at
///    every call site — a deliberate conservatism, since the dependency
///    window of a deferable load rarely spans a call.)
///  - Address points-to: a flow-insensitive may-points-to over the
///    program's globals (mirroring the lockset analysis' one) resolves
///    loads used as addresses (`movl p, %eax; movl (%eax), %ebx` where
///    p holds &x) to named cells. The map is only trusted when no module
///    may store a pointer through an unresolved target (else every cell
///    is wild), keeping cross-module pointer laundering sound.
///
/// Frame cells count as thread-private (Confined) only while the frame
/// address provably stays in the thread's registers. The abstract values
/// carry a frame-derived taint through moves and pointer arithmetic, and
/// an escape scan checks every point where a register value leaves the
/// thread — stores to memory, cmpxchg publishes, call arguments, the
/// return value at ret. If any such point may carry the frame address,
/// the entry's frame accesses are reclassified as SharedUnknown: frames
/// live in ordinary shared memory, so a peer that learns the address can
/// race on them, and a certificate that ignored that would be unsound.
///
/// Robustness here is *divergence-sensitive* SC-equivalence (the bench
/// gate compares full trace sets, divergent prefixes included), which
/// makes observable events violation points too: an event emitted while
/// stores are buffered proves the thread progressed past the store, yet
/// an unfair schedule can starve the flush while a peer loops on the
/// stale cell forever — a divergence no SC schedule reproduces, since
/// under SC the store hits memory before the event. A pending store (or
/// pending load) crossing a printl is therefore a witness, same as a
/// boundary escape.
///
/// Two deliberate conservatisms keep the certificate meaningful:
///  - call/ret drain the buffer and complete pending loads in the
///    executable model (a documented simplification), but the analysis
///    does NOT credit them as fences — real hardware fences at neither,
///    and a certificate should survive the model simplification being
///    lifted. (Thread-exit discharge is different: it relies on the
///    thread *ending*, not on a drain.)
///  - An access escaping the module boundary is a witness even though no
///    in-module partner completes the pair: the client executes under
///    the same buffer, so any client access of another shared location
///    completes it.
///
/// The historical TSO-only entry points (tsoRobustness & friends) live on
/// as thin forwarding aliases in analysis/TsoRobust.h.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_ANALYSIS_ROBUSTNESS_H
#define CASCC_ANALYSIS_ROBUSTNESS_H

#include "core/MemModel.h"
#include "core/Program.h"
#include "x86/X86Asm.h"
#include "x86/X86Lang.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace ccc {
namespace analysis {

enum class RobustVerdict { Robust, NotRobust, Unknown };

const char *robustVerdictName(RobustVerdict V);

/// The reorderings a memory model may perform, as the robustness core
/// consumes them. Each axis enables one dimension of the pending-access
/// dataflow; a model with neither is trivially SC-equivalent.
struct ReorderTable {
  /// Plain stores may linger in a FIFO store buffer past later loads
  /// (the TSO axis: store→load reordering).
  bool StoresLinger = false;
  /// Register loads may stay pending past later instructions until the
  /// first dependent use (the Relaxed axis: load→load / load→store
  /// reordering, bounded by the dynamic model's conflict gate).
  bool LoadsDefer = false;
};

/// The reordering table of declared model \p M: SC reorders nothing, TSO
/// buffers stores, Relaxed additionally defers loads.
inline ReorderTable reorderTableFor(MemModel M) {
  switch (M) {
  case MemModel::SC:
    return {false, false};
  case MemModel::TSO:
    return {true, false};
  case MemModel::Relaxed:
    return {true, true};
  }
  return {true, true};
}

/// How the analysis classified one memory access site.
enum class AccessClass {
  Confined,      ///< Thread-private frame slot — invisible to other threads.
  SharedKnown,   ///< A global cell with a resolved name.
  SharedUnknown, ///< Possibly shared, target unresolved.
};

/// One memory access site named by a witness or certificate.
struct RobustAccess {
  unsigned PC = 0;
  std::string Entry;  ///< Entry point whose CFG reaches the site.
  std::string Text;   ///< Instruction text (Instr::toString).
  std::string Global; ///< Resolved target cell, or "?" when unresolved.
  bool Write = false;
  AccessClass Cls = AccessClass::SharedUnknown;

  std::string describe() const;
};

/// A concrete robustness violation: a reorderable access pair the model's
/// table permits and no fence (or dependency) splits. On the store axis,
/// an unfenced plain store to a shared location completed by a later load
/// of a (possibly) different shared location; on the load axis
/// (DeferredLoad set), a deferable load still pending across a later
/// shared access. Either side may instead cross the module boundary or an
/// observable event (Escape).
struct TriangularWitness {
  /// The reordered-past access: the buffered store, or — when
  /// DeferredLoad is set — the pending load.
  RobustAccess Store;
  /// The completing later access; nullopt when the pending access escapes
  /// (Escape names the crossing instruction instead).
  std::optional<RobustAccess> Load;
  /// The observable crossing point the access stays pending across: a
  /// boundary instruction (call/tcall/ret) or an event emission (printl).
  std::optional<RobustAccess> Escape;
  /// PC path from the pending access to the violation, fence-free by
  /// construction (empty when the two sites sit in different entries,
  /// connected through a same-module call).
  std::vector<unsigned> Path;
  /// Buffer-order context (store axis only): PCs of the *other* stores
  /// that may share the store buffer with Store when the violation
  /// fires. None of them is a must-pending store to the load's cell
  /// (that would have excused the pair under the FIFO criterion).
  std::vector<unsigned> BufferPCs;
  /// True when an unresolved target made this witness conservative — it
  /// degrades the verdict to Unknown instead of NotRobust.
  bool Tentative = false;
  /// True when this is a load-axis witness: Store holds the deferred
  /// load, and the violation is a load reordering (LB/IRIW shape).
  bool DeferredLoad = false;

  std::string describe() const;
};

/// Per-site proof obligation discharged on a Robust module: the point
/// covering every path from the pending access. For stores this is a
/// drain (mfence / locked op / thread exit); for deferred loads
/// (DeferredLoad set) it may also be the first dependent use of the
/// loaded register or a same-cell access (Dependency set) — the
/// completion-forcing points of the dynamic model.
struct FenceCert {
  std::string Entry;
  unsigned StorePC = 0; ///< The pending access (store, or deferred load).
  unsigned DrainPC = 0; ///< The covering drain/dependency point.
  std::string StoreText;
  std::string DrainText;
  /// True when the drain point is the ret of a root-only entry: the
  /// access retires because the thread exits, not because of a fence.
  bool AtThreadExit = false;
  /// True when StorePC is a deferable load certified on the load axis.
  bool DeferredLoad = false;
  /// True when the covering point is a dependent use / same-cell access
  /// rather than a drain (load axis only).
  bool Dependency = false;

  std::string describe() const;
};

/// Program-derived facts that sharpen the per-module analysis. Only
/// meaningful for a *closed* program: every module is x86, so every call
/// site, thread root, and store in the program is visible to the
/// builder. Absent a context, robustness() treats the module as callable
/// by arbitrary unknown clients (maximally conservative).
struct RobustContext {
  /// The owning program is closed (all modules x86).
  bool Closed = false;

  /// Entries never named by any call/tailcall in any module: every
  /// activation is a thread root, so ret is a thread exit and pending
  /// accesses retire there (thread-exit certificates).
  std::set<std::string> RootOnlyEntries;

  /// Entries of this module that a call from this module actually
  /// dispatches to (no earlier module shadows the name under the
  /// program's first-module-wins resolution). Same-module call
  /// summaries apply only to these.
  std::set<std::string> SelfResolvedEntries;

  /// Entries reached only through same-module plain calls (never a
  /// thread root, never called from another module, never tail-called):
  /// they are analyzed solely through their call-site summaries, so a
  /// pending store at their ret is the *caller's* obligation, not an
  /// escape.
  std::set<std::string> SummaryOnlyEntries;

  /// Flow-insensitive may-points-to for one global cell: the named
  /// cells whose address the global may hold, or Wild when it may hold
  /// an arbitrary pointer.
  struct Pointees {
    bool Wild = false;
    std::set<std::string> Cells;
  };

  /// True when GlobalPointsTo is trustworthy program-wide: every store
  /// of a may-pointer value lands in a cell the context builder can
  /// name — directly, or through a linker-resolved neighbour target
  /// whose victim cell has been degraded (per-cell, not whole-map).
  /// Only a store through a completely unknown base address leaves the
  /// maps distrusted.
  bool HasPointsTo = false;
  std::map<std::string, Pointees> GlobalPointsTo;
};

/// The per-module analysis result.
struct RobustReport {
  RobustVerdict Verdict = RobustVerdict::Unknown;
  /// The model whose reorder table the analysis certified against.
  MemModel Model = MemModel::TSO;
  /// Concrete witnesses (NotRobust) and tentative ones (Unknown).
  std::vector<TriangularWitness> Witnesses;
  /// Per-site fence/dependency certificates; complete exactly when
  /// Robust.
  std::vector<FenceCert> Certificates;
  std::vector<std::string> Notes;

  unsigned SharedStores = 0;   ///< Plain stores to shared locations.
  unsigned SharedLoads = 0;    ///< Plain loads of shared locations.
  unsigned ConfinedAccesses = 0; ///< Frame-confined accesses (ignored).
  unsigned LockedOps = 0;      ///< Lock-prefixed accesses (drain points).
  unsigned Entries = 0;        ///< Entry points analyzed.

  /// Per-store accounting over the SharedStores sites: how many hold at
  /// least one fence certificate, how many appear in at least one
  /// witness, and how many reach neither (every path from them diverges
  /// before the next shared access). Certified and Divergent partition
  /// the stores exactly when Robust (no witnesses).
  unsigned CertifiedStores = 0;
  unsigned WitnessedStores = 0;
  unsigned DivergentStores = 0;

  /// Load-axis accounting (all zero unless the model's table defers
  /// loads): the deferable load sites, partitioned the same way.
  unsigned DeferableLoads = 0;
  unsigned CertifiedLoads = 0;
  unsigned WitnessedLoads = 0;
  unsigned DivergentLoads = 0;

  bool robust() const { return Verdict == RobustVerdict::Robust; }

  /// Checks the report's structural invariant — "certificates complete
  /// exactly when Robust": a Robust verdict must carry no witnesses and
  /// must certify-or-diverge every counted shared store and deferable
  /// load; a non-Robust verdict must name at least one witness. Returns
  /// an explanation of the violation, or the empty string when
  /// consistent. robustness() checks this before returning and degrades
  /// an inconsistent Robust verdict to Unknown with a note.
  std::string inconsistency() const;

  std::string toString() const;
};

/// Runs the robustness analysis on one x86 module against the reorder
/// table of \p Model. \p Ctx, when given, supplies closed-program facts
/// (thread-exit discharge, same-module summaries, points-to); null means
/// standalone worst-case assumptions. A model whose table permits no
/// reordering (SC) yields a trivially Robust report with a note and no
/// per-site accounting.
RobustReport robustness(const x86::Module &M,
                        const RobustContext *Ctx = nullptr,
                        MemModel Model = MemModel::TSO);

/// Builds the per-module analysis context for every module of \p P.
/// Returns an empty map unless the program is closed (all modules x86):
/// open programs get no context and modules fall back to standalone
/// worst-case analysis. Keys are module names.
std::map<std::string, RobustContext> robustContexts(const Program &P);

/// One x86 module of a linked program, with its verdict.
struct ModuleRobustInfo {
  std::string Name;
  bool ObjectMode = false;
  MemModel Model = MemModel::SC; ///< The module's *declared* model.
  RobustReport Report;
  /// Set by the caller once an object-refinement check (refinesTraces
  /// against the module's abstract spec) covers the weak behaviours —
  /// the "flagged-but-allowed" state of a benign NotRobust module.
  bool AllowedByRefinement = false;
};

/// Program-level summary: the robustness verdict of every x86 module.
struct ProgramRobustReport {
  std::vector<ModuleRobustInfo> Modules;

  /// True when the program has x86 modules and every one is Robust.
  bool allRobust() const;
  /// True when some buffered-model (non-SC) module is certified Robust
  /// (SC fast path applicable to it).
  bool anyScSwitchable() const;
  std::string toString() const;
};

/// Analyzes every x86 module of \p P under its own declared model's
/// reorder table, with the closed-program contexts of robustContexts
/// when the program is closed. A module already declared SC is certified
/// against the TSO table instead of the trivial SC one, so its report
/// stays informative (the certificates are what justify an SC
/// declaration — e.g. after an earlier fast-path switch).
ProgramRobustReport programRobustness(const Program &P);

/// Downgrades every certified-Robust buffered-model (TSO or Relaxed) x86
/// module of \p P to MemModel::SC: by robustness its weak behaviours are
/// SC-explainable, so the buffer/pending dimension of the explorer's
/// state space is redundant. Returns the number of modules switched.
/// \p P may be linked; module global bindings are preserved. Non-Robust
/// modules — including AllowedByRefinement ones (flagged-but-allowed) —
/// are never switched: "allowed" means the refinement check covers their
/// weak behaviours, not that they have none.
unsigned switchRobustToSc(Program &P, const ProgramRobustReport &R);

} // namespace analysis
} // namespace ccc

#endif // CASCC_ANALYSIS_ROBUSTNESS_H
