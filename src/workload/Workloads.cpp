//===- workload/Workloads.cpp - Benchmark workload generators --------------===//

#include "workload/Workloads.h"

#include "cimp/CImpLang.h"
#include "clight/ClightLang.h"
#include "support/StrUtil.h"
#include "sync/LockLib.h"

using namespace ccc;
using namespace ccc::workload;

std::string ccc::workload::fig10cClientSource() {
  return R"(
    extern void lock();
    extern void unlock();
    int x = 0;
    void inc() {
      int32_t tmp;
      lock();
      tmp = x;
      x = x + 1;
      unlock();
      print(tmp);
    }
  )";
}

std::string ccc::workload::cimpLockClientSource(unsigned Increments,
                                                unsigned CsExtra) {
  StrBuilder B;
  B << "global x = 0;\n";
  B << "inc() {\n";
  B << "  n := 0;\n";
  B << "  while (n < " << Increments << ") {\n";
  B << "    lock();\n";
  for (unsigned I = 0; I < CsExtra; ++I)
    B << "    pad" << I << " := n + " << I << ";\n";
  B << "    tmp := [x];\n";
  B << "    [x] := tmp + 1;\n";
  B << "    unlock();\n";
  B << "    print(tmp);\n";
  B << "    n := n + 1;\n";
  B << "  }\n";
  B << "}\n";
  return B.take();
}

Program ccc::workload::lockedCounter(unsigned Threads, unsigned Increments,
                                     unsigned CsExtra) {
  Program P;
  cimp::addCImpModule(P, "client",
                      cimpLockClientSource(Increments, CsExtra));
  sync::addGammaLock(P);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::racyCounter(unsigned Threads) {
  Program P;
  cimp::addCImpModule(P, "client", R"(
    global x = 0;
    inc() { tmp := [x]; [x] := tmp + 1; print(tmp); }
  )");
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::atomicCounter(unsigned Threads, unsigned Work) {
  StrBuilder B;
  B << "global x = 0;\n";
  B << "inc() {\n";
  for (unsigned I = 0; I < Work; ++I)
    B << "  w" << I << " := " << I << " + 1;\n";
  B << "  < v := [x]; [x] := v + 1; >\n";
  B << "}\n";
  Program P;
  cimp::addCImpModule(P, "client", B.take());
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::clightLockedCounter(unsigned Threads) {
  Program P;
  clight::addClightModule(P, "client", fig10cClientSource());
  sync::addGammaLock(P);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::asmCounterWithPiLock(x86::MemModel Model,
                                            unsigned Threads) {
  Program P;
  x86::addAsmModule(P, "client", R"(
    .data x 0
    .entry inc 0 0
    .extern lock 0
    .extern unlock 0
    inc:
            call lock
            movl x, %ebx
            movl %ebx, %ecx
            addl $1, %ecx
            movl %ecx, x
            call unlock
            printl %ebx
            retl
  )",
                    Model);
  sync::addPiLock(P, Model);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::asmCounterWithPiLockFenced(x86::MemModel Model,
                                                  unsigned Threads) {
  Program P;
  x86::addAsmModule(P, "client", R"(
    .data x 0
    .entry inc 0 0
    .extern lock 0
    .extern unlock 0
    inc:
            call lock
            movl x, %ebx
            movl %ebx, %ecx
            addl $1, %ecx
            movl %ecx, x
            mfence
            call unlock
            printl %ebx
            retl
  )",
                    Model);
  sync::addPiLockFenced(P, Model);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::asmCounterWithRecLock(x86::MemModel Model,
                                             unsigned Threads) {
  Program P;
  x86::addAsmModule(P, "client", R"(
    .data x 0
    .entry inc 0 0
    .extern lock 0
    .extern unlock 0
    inc:
            call lock
            movl x, %ebx
            movl %ebx, %ecx
            addl $1, %ecx
            movl %ecx, x
            mfence
            call unlock
            printl %ebx
            retl
  )",
                    Model);
  sync::addPiLockRecursive(P, Model);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

namespace {

Program pingPongProgram(x86::MemModel Model, unsigned Rounds, bool Fenced) {
  StrBuilder B;
  B << "    .data x 0\n"
    << "    .data y 0\n"
    << "    .entry t1 0 0\n"
    << "    .entry t2 0 0\n";
  auto thread = [&B, Rounds, Fenced](const char *Entry, const char *Own,
                                     const char *Peer) {
    B << Entry << ":\n"
      << "            movl $" << Rounds << ", %ecx\n"
      << Entry << "_loop:\n"
      << "            movl %ecx, " << Own << "\n";
    if (Fenced)
      B << "            mfence\n";
    B << "            movl " << Peer << ", %eax\n"
      << "            printl %eax\n"
      << "            subl $1, %ecx\n"
      << "            cmpl $0, %ecx\n"
      << "            jne " << Entry << "_loop\n"
      << "            retl\n";
  };
  thread("t1", "x", "y");
  thread("t2", "y", "x");
  Program P;
  x86::addAsmModule(P, "m", B.take(), Model);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  return P;
}

} // namespace

Program ccc::workload::fencedPingPong(x86::MemModel Model, unsigned Rounds) {
  return pingPongProgram(Model, Rounds, /*Fenced=*/true);
}

Program ccc::workload::unfencedPingPong(x86::MemModel Model,
                                        unsigned Rounds) {
  return pingPongProgram(Model, Rounds, /*Fenced=*/false);
}

Program ccc::workload::asmCounterWithRecLockUnfenced(x86::MemModel Model,
                                                     unsigned Threads) {
  Program P;
  x86::addAsmModule(P, "client", R"(
    .data x 0
    .entry inc 0 0
    .extern lock 0
    .extern unlock 0
    inc:
            call lock
            movl x, %ebx
            movl %ebx, %ecx
            addl $1, %ecx
            movl %ecx, x
            call unlock
            printl %ebx
            retl
  )",
                    Model);
  sync::addPiLockRecursiveUnfenced(P, Model);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::sbLitmus(x86::MemModel Model, bool Fenced) {
  const char *Plain = R"(
    .data x 0
    .data y 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $1, x
            movl y, %eax
            printl %eax
            retl
    t2:
            movl $1, y
            movl x, %ebx
            printl %ebx
            retl
  )";
  const char *WithFence = R"(
    .data x 0
    .data y 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $1, x
            mfence
            movl y, %eax
            printl %eax
            retl
    t2:
            movl $1, y
            mfence
            movl x, %ebx
            printl %ebx
            retl
  )";
  Program P;
  x86::addAsmModule(P, "m", Fenced ? WithFence : Plain, Model);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  return P;
}

Program ccc::workload::mpLitmus(x86::MemModel Model) {
  Program P;
  x86::addAsmModule(P, "m", R"(
    .data data 0
    .data flag 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $42, data
            movl $1, flag
            retl
    t2:
    spin:
            movl flag, %eax
            cmpl $1, %eax
            jne spin
            movl data, %ebx
            printl %ebx
            retl
  )",
                    Model);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  return P;
}

Program ccc::workload::mpPublishReadback(x86::MemModel Model) {
  Program P;
  x86::addAsmModule(P, "m", R"(
    .data data 0
    .data flag 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $42, data
            movl $1, flag
            movl flag, %eax
            mfence
            printl %eax
            retl
    t2:
    spin:
            movl flag, %eax
            cmpl $1, %eax
            jne spin
            movl data, %ebx
            printl %ebx
            retl
  )",
                    Model);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  return P;
}

Program ccc::workload::lockThenPublish(x86::MemModel Model) {
  Program P;
  x86::addAsmModule(P, "m", R"(
    .data data 0
    .data flag 0
    .entry t1 0 0
    .entry t2 0 0
    .entry pub 0 0
    t1:
            movl $42, data
            call pub
            retl
    pub:
            movl $1, flag
            mfence
            retl
    t2:
    spin:
            movl flag, %eax
            cmpl $1, %eax
            jne spin
            movl data, %ebx
            printl %ebx
            retl
  )",
                    Model);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  return P;
}

Program ccc::workload::pointerChainClient(x86::MemModel Model) {
  Program P;
  x86::addAsmModule(P, "m", R"(
    .data x 0
    .data y 0
    .data p 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $x, p
            mfence
            movl $1, x
            mfence
            retl
    t2:
    spin:
            movl p, %eax
            cmpl $0, %eax
            je spin
            movl $2, (%eax)
            mfence
            movl y, %ebx
            printl %ebx
            retl
  )",
                    Model);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  return P;
}
