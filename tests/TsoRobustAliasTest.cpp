//===- tests/TsoRobustAliasTest.cpp - Alias header audit ------------------===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
// analysis/TsoRobust.h is the deprecated TSO-only spelling of the
// model-generic robustness API. This test includes the alias header ALONE
// (no analysis/Robustness.h include of its own) and exercises every alias
// it exports, so a drifted or dead alias fails to compile here instead of
// silently rotting. The dead `TsoAccess = RobustAccess` alias was deleted
// in the audit that added this test; everything below is live.
//
//===----------------------------------------------------------------------===//

#include "analysis/TsoRobust.h"

#include "gtest/gtest.h"

#include <type_traits>

namespace {

using namespace ccc;
using namespace ccc::analysis;

// Every type alias must still forward to its Robustness.h original.
static_assert(std::is_same_v<TsoVerdict, RobustVerdict>);
static_assert(std::is_same_v<TsoModuleContext, RobustContext>);
static_assert(std::is_same_v<TsoRobustReport, RobustReport>);
static_assert(std::is_same_v<ModuleTsoInfo, ModuleRobustInfo>);
static_assert(std::is_same_v<ProgramTsoReport, ProgramRobustReport>);

TEST(TsoRobustAliasTest, VerdictNamesForward) {
  EXPECT_STREQ(tsoVerdictName(TsoVerdict::Robust),
               robustVerdictName(RobustVerdict::Robust));
  EXPECT_STREQ(tsoVerdictName(TsoVerdict::NotRobust),
               robustVerdictName(RobustVerdict::NotRobust));
  EXPECT_STREQ(tsoVerdictName(TsoVerdict::Unknown),
               robustVerdictName(RobustVerdict::Unknown));
}

TEST(TsoRobustAliasTest, ModuleEntryPointRunsUnderTso) {
  // An empty module is trivially Robust under any model; the alias must
  // pin the TSO reorder table.
  x86::Module M;
  TsoRobustReport R = tsoRobustness(M);
  EXPECT_EQ(R.Verdict, TsoVerdict::Robust);
  EXPECT_EQ(R.Model, MemModel::TSO);
}

TEST(TsoRobustAliasTest, ProgramEntryPointsForward) {
  Program P;
  std::map<std::string, TsoModuleContext> Ctxs = tsoModuleContexts(P);
  EXPECT_TRUE(Ctxs.empty());

  ProgramTsoReport R = programTsoRobustness(P);
  EXPECT_TRUE(R.Modules.empty());

  EXPECT_EQ(applyScFastPath(P, R), 0u);
}

} // namespace
