//===- compiler/Compiler.cpp - The CASCompCert driver ----------------------===//

#include "compiler/Compiler.h"

#include "analysis/IRVerifier.h"
#include "clight/ClightLang.h"
#include "clight/ClightParser.h"
#include "ir/IRLangs.h"
#include "x86/X86Lang.h"

#include <cassert>

using namespace ccc;
using namespace ccc::compiler;

const std::vector<std::string> &ccc::compiler::passNames() {
  static const std::vector<std::string> Names = {
      "Cshmgen",   "Cminorgen", "Selection",     "RTLgen",
      "Tailcall",  "Renumber",  "Allocation",    "Tunneling",
      "Linearize", "CleanupLabels", "Stacking",  "Asmgen"};
  return Names;
}

CompileResult
ccc::compiler::compileClight(std::shared_ptr<const clight::Module> M) {
  CompileResult R;
  R.Clight = std::move(M);
  R.Csharpminor = cshmgen(*R.Clight);
  R.Cminor = cminorgen(*R.Csharpminor);
  R.CminorSel = selection(*R.Cminor);
  R.RTL = rtlgen(*R.CminorSel);
  R.RTLTailcall = tailcall(*R.RTL);
  R.RTLRenumber = renumber(*R.RTLTailcall);
  R.LTL = allocation(*R.RTLRenumber);
  R.LTLTunneled = tunneling(*R.LTL);
  R.Linear = linearize(*R.LTLTunneled);
  R.LinearClean = cleanupLabels(*R.Linear);
  R.Mach = stacking(*R.LinearClean);
  R.Asm = asmgen(*R.Mach);
  // Every pass boundary is structurally verified right here, so malformed
  // pass output surfaces at compile time instead of as an obscure
  // simulation-check or execution failure downstream.
  for (const analysis::VerifyResult &VR : analysis::verifyPipeline(R))
    for (const std::string &E : VR.Errors)
      R.VerifyErrors.push_back(E);
  return R;
}

CompileResult
ccc::compiler::compileClightSource(const std::string &Source) {
  return compileClight(clight::parseModuleOrDie(Source));
}

unsigned ccc::compiler::numStages() { return 13; }

const std::string &ccc::compiler::stageName(unsigned Stage) {
  static const std::vector<std::string> Names = {
      "Clight", "Csharpminor", "Cminor",  "CminorSel", "RTL",
      "RTL+tailcall", "RTL+renumber", "LTL", "LTL+tunneling", "Linear",
      "Linear+cleanup", "Mach", "x86-SC"};
  assert(Stage < Names.size());
  return Names[Stage];
}

unsigned ccc::compiler::addStage(Program &P, const CompileResult &R,
                                 unsigned Stage, const std::string &Name) {
  switch (Stage) {
  case 0:
    return clight::addClightModule(
        P, Name, std::shared_ptr<const clight::Module>(R.Clight));
  case 1:
    return ir::addCsharpminorModule(P, Name, R.Csharpminor);
  case 2:
    return ir::addCminorModule(P, Name, R.Cminor);
  case 3:
    return ir::addCminorSelModule(P, Name, R.CminorSel);
  case 4:
    return ir::addRTLModule(P, Name, R.RTL);
  case 5:
    return ir::addRTLModule(P, Name, R.RTLTailcall);
  case 6:
    return ir::addRTLModule(P, Name, R.RTLRenumber);
  case 7:
    return ir::addLTLModule(P, Name, R.LTL);
  case 8:
    return ir::addLTLModule(P, Name, R.LTLTunneled);
  case 9:
    return ir::addLinearModule(P, Name, R.Linear);
  case 10:
    return ir::addLinearModule(P, Name, R.LinearClean);
  case 11:
    return ir::addMachModule(P, Name, R.Mach);
  case 12:
    return x86::addAsmModule(P, Name, R.Asm, x86::MemModel::SC);
  }
  assert(false && "bad stage");
  return 0;
}
