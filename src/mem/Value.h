//===- mem/Value.h - Runtime values -----------------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values (paper: Val ::= l | ...). We instantiate values as 32-bit
/// machine integers (with CompCert-style wrap-around arithmetic), pointers
/// (addresses), and the undefined value.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_MEM_VALUE_H
#define CASCC_MEM_VALUE_H

#include "mem/Addr.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace ccc {

/// A runtime value: a 32-bit integer, a pointer, or undef.
class Value {
public:
  enum class Kind { Undef, Int, Ptr };

  Value() : K(Kind::Undef), Bits(0) {}

  static Value makeInt(int32_t V) {
    Value Out;
    Out.K = Kind::Int;
    Out.Bits = static_cast<uint32_t>(V);
    return Out;
  }

  static Value makePtr(Addr A) {
    Value Out;
    Out.K = Kind::Ptr;
    Out.Bits = A;
    return Out;
  }

  static Value makeUndef() { return Value(); }

  Kind kind() const { return K; }
  bool isUndef() const { return K == Kind::Undef; }
  bool isInt() const { return K == Kind::Int; }
  bool isPtr() const { return K == Kind::Ptr; }

  int32_t asInt() const {
    assert(isInt() && "value is not an integer");
    return static_cast<int32_t>(Bits);
  }

  Addr asPtr() const {
    assert(isPtr() && "value is not a pointer");
    return Bits;
  }

  /// Returns the integer payload if Int, else 0; used by arithmetic that
  /// treats undef operands as an abort at a higher level.
  int32_t intOrZero() const { return isInt() ? asInt() : 0; }

  /// The raw 32-bit payload regardless of kind; pairs with kind() for
  /// hashing a value without branching on its representation.
  uint32_t rawBits() const { return Bits; }

  bool operator==(const Value &Other) const {
    return K == Other.K && Bits == Other.Bits;
  }
  bool operator!=(const Value &Other) const { return !(*this == Other); }

  /// Renders the value for state keys and dumps.
  std::string toString() const {
    switch (K) {
    case Kind::Undef:
      return "undef";
    case Kind::Int:
      return std::to_string(asInt());
    case Kind::Ptr:
      return "&" + std::to_string(static_cast<uint64_t>(Bits));
    }
    return "?";
  }

private:
  Kind K;
  uint32_t Bits;
};

} // namespace ccc

#endif // CASCC_MEM_VALUE_H
