//===- core/Trace.h - Observable event traces -------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observable event traces (paper: B, Sec. 3.2): finite sequences of
/// external events possibly ending with a termination marker done or an
/// abortion marker abort. Infinite silent executions are represented by a
/// divergence terminal; exploration cutoffs by a cut terminal (which makes
/// a trace set non-definitive).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_TRACE_H
#define CASCC_CORE_TRACE_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace ccc {

/// How a complete trace ends.
enum class TraceEnd : uint8_t {
  Done,  ///< All threads terminated (paper: done).
  Abort, ///< The program aborted (paper: abort).
  Div,   ///< Silent divergence after the event prefix.
  Cut,   ///< Exploration bound reached (unknown continuation).
};

/// One complete observable trace.
struct Trace {
  std::vector<int64_t> Events;
  TraceEnd End = TraceEnd::Done;

  bool operator<(const Trace &Other) const {
    if (Events != Other.Events)
      return Events < Other.Events;
    return End < Other.End;
  }
  bool operator==(const Trace &Other) const {
    return Events == Other.Events && End == Other.End;
  }

  std::string toString() const;
};

/// A set of complete traces of a program (the Etr(P, B) relation as a set).
class TraceSet {
public:
  void insert(Trace T) { Traces.insert(std::move(T)); }

  bool contains(const Trace &T) const { return Traces.count(T) != 0; }
  std::size_t size() const { return Traces.size(); }
  bool empty() const { return Traces.empty(); }

  const std::set<Trace> &traces() const { return Traces; }

  /// True if any trace ends with Cut (the set is a lower bound only).
  bool truncated() const;

  /// True if any trace ends with Abort.
  bool hasAbort() const;

  /// Collapses Done and Div into a single terminal, modeling the paper's
  /// termination-insensitive refinement (Sec. 7.3's subset' relation).
  TraceSet collapseTermination() const;

  bool subsetOf(const TraceSet &Other) const;
  bool operator==(const TraceSet &Other) const {
    return Traces == Other.Traces;
  }

  std::string toString() const;

private:
  std::set<Trace> Traces;
};

/// Result of a refinement check.
struct RefineResult {
  bool Holds = false;
  /// False when a trace set was truncated so the answer is only a bound.
  bool Definitive = true;
  std::string CounterExample;
};

/// Event-trace refinement P subset Q (Sec. 3.2): every trace of \p Impl is
/// a trace of \p Spec. With \p TermInsensitive, uses the subset' relation
/// of Sec. 7.3 which does not preserve termination.
RefineResult refinesTraces(const TraceSet &Impl, const TraceSet &Spec,
                           bool TermInsensitive = false);

/// Event-trace equivalence P ~ Q (refinement in both directions).
RefineResult equivTraces(const TraceSet &A, const TraceSet &B);

} // namespace ccc

#endif // CASCC_CORE_TRACE_H
