//===- core/Explorer.h - Exhaustive state-space exploration -----*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exhaustive exploration engine that stands in for the paper's
/// whole-program proofs: it builds the reachable global-state graph of a
/// World (preemptive) or NPWorld (non-preemptive), computes the complete
/// event-trace set Etr(P, B) via epsilon-closure subset construction
/// (including silent divergence), and runs the Race rule of Fig. 9 over
/// every reachable state.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_EXPLORER_H
#define CASCC_CORE_EXPLORER_H

#include "core/Trace.h"
#include "core/WorldCommon.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace ccc {

/// Exploration limits.
struct ExploreOptions {
  /// Maximum number of distinct global states to expand.
  unsigned MaxStates = 2000000;
  /// Maximum number of observable events per trace.
  unsigned MaxEvents = 64;
};

/// A data race witness (the Race rule of Fig. 9).
struct RaceWitness {
  std::string StateKey;
  ThreadId T1 = 0;
  ThreadId T2 = 0;
  InstrFootprint FP1;
  InstrFootprint FP2;
  /// True when both footprints lie entirely inside a designated region
  /// (set by confinement analysis; see raceConfinedTo).
  bool Confined = false;
};

/// Exhaustive explorer over a world type (World or NPWorld).
template <typename WorldT> class Explorer {
public:
  explicit Explorer(ExploreOptions Opts = {}) : Opts(Opts) {}

  /// Builds the reachable state graph from the given initial worlds.
  void build(const std::vector<WorldT> &Inits) {
    std::deque<unsigned> Work;
    for (const WorldT &W : Inits) {
      unsigned Idx = intern(W);
      Work.push_back(Idx);
      InitIdx.push_back(Idx);
    }
    while (!Work.empty()) {
      unsigned Idx = Work.front();
      Work.pop_front();
      if (Nodes[Idx].Expanded)
        continue;
      if (NumExpanded >= Opts.MaxStates) {
        Truncated = true;
        Nodes[Idx].Frontier = true;
        continue;
      }
      ++NumExpanded;
      Nodes[Idx].Expanded = true;
      // Note: succ() of an aborted or done world is empty.
      auto Succs = Nodes[Idx].W.succ();
      for (auto &S : Succs) {
        unsigned To = intern(S.Next);
        Edge E;
        E.To = To;
        E.K = S.L.K;
        E.Ev = S.L.EventVal;
        Nodes[Idx].Out.push_back(E);
        if (!Nodes[To].Expanded)
          Work.push_back(To);
      }
    }
    computeDivergence();
  }

  /// Convenience: build from a single initial world.
  void build(const WorldT &Init) { build(std::vector<WorldT>{Init}); }

  std::size_t numStates() const { return Nodes.size(); }
  bool truncated() const { return Truncated; }

  /// True if an aborted state is reachable (the paper's Safe(P) is the
  /// negation of this).
  bool anyAbort() const {
    for (const Node &N : Nodes)
      if (N.W.aborted())
        return true;
    return false;
  }

  /// Returns the abort reason of some reachable aborted state, if any.
  std::optional<std::string> abortReason() const {
    for (const Node &N : Nodes)
      if (N.W.aborted())
        return N.W.abortReason();
    return std::nullopt;
  }

  /// Computes the complete trace set via subset construction over silent
  /// edges.
  TraceSet traces() const {
    TraceSet Out;
    if (Nodes.empty())
      return Out;

    using Closure = std::vector<unsigned>;
    auto closureOf = [&](std::vector<unsigned> Seed) {
      std::set<unsigned> Seen(Seed.begin(), Seed.end());
      std::deque<unsigned> Work(Seed.begin(), Seed.end());
      while (!Work.empty()) {
        unsigned I = Work.front();
        Work.pop_front();
        for (const Edge &E : Nodes[I].Out) {
          if (E.K == GLabel::Kind::Event)
            continue;
          if (Seen.insert(E.To).second)
            Work.push_back(E.To);
        }
      }
      return Closure(Seen.begin(), Seen.end());
    };

    struct Item {
      Closure C;
      std::vector<int64_t> Prefix;
    };
    auto closureKey = [](const Closure &C) {
      std::string K;
      for (unsigned I : C)
        K += std::to_string(I) + ",";
      return K;
    };

    std::deque<Item> Work;
    std::set<std::string> Visited;
    {
      Item Init;
      Init.C = closureOf(InitIdx);
      Work.push_back(std::move(Init));
    }
    while (!Work.empty()) {
      Item Cur = std::move(Work.front());
      Work.pop_front();
      std::string VisitKey = closureKey(Cur.C);
      for (int64_t E : Cur.Prefix)
        VisitKey += "|" + std::to_string(E);
      if (!Visited.insert(VisitKey).second)
        continue;

      bool SawDone = false, SawAbort = false, SawDiv = false, SawCut = false;
      std::map<int64_t, std::vector<unsigned>> EventSuccs;
      for (unsigned I : Cur.C) {
        const Node &N = Nodes[I];
        if (N.W.done())
          SawDone = true;
        if (N.W.aborted())
          SawAbort = true;
        if (N.Div)
          SawDiv = true;
        if (N.Frontier)
          SawCut = true;
        for (const Edge &E : N.Out)
          if (E.K == GLabel::Kind::Event)
            EventSuccs[E.Ev].push_back(E.To);
      }
      if (SawDone)
        Out.insert(Trace{Cur.Prefix, TraceEnd::Done});
      if (SawAbort)
        Out.insert(Trace{Cur.Prefix, TraceEnd::Abort});
      if (SawDiv)
        Out.insert(Trace{Cur.Prefix, TraceEnd::Div});
      if (SawCut)
        Out.insert(Trace{Cur.Prefix, TraceEnd::Cut});
      for (auto &KV : EventSuccs) {
        if (Cur.Prefix.size() >= Opts.MaxEvents) {
          Out.insert(Trace{Cur.Prefix, TraceEnd::Cut});
          break;
        }
        Item Next;
        Next.C = closureOf(KV.second);
        Next.Prefix = Cur.Prefix;
        Next.Prefix.push_back(KV.first);
        Work.push_back(std::move(Next));
      }
    }
    return Out;
  }

  /// Runs the Race rule of Fig. 9 over every reachable state; returns the
  /// first witness found, or nullopt when the program is race free (DRF
  /// for World, NPDRF for NPWorld).
  std::optional<RaceWitness> findRace() const {
    for (const Node &N : Nodes) {
      if (!N.W.racePredictable())
        continue;
      unsigned NT = N.W.numThreads();
      std::vector<std::vector<InstrFootprint>> Preds(NT);
      for (ThreadId T = 0; T < NT; ++T)
        Preds[T] = N.W.predictFor(T);
      for (ThreadId T1 = 0; T1 < NT; ++T1) {
        for (ThreadId T2 = T1 + 1; T2 < NT; ++T2) {
          for (const InstrFootprint &F1 : Preds[T1]) {
            for (const InstrFootprint &F2 : Preds[T2]) {
              if (F1.conflictsWith(F2)) {
                RaceWitness W;
                W.StateKey = N.W.key();
                W.T1 = T1;
                W.T2 = T2;
                W.FP1 = F1;
                W.FP2 = F2;
                return W;
              }
            }
          }
        }
      }
    }
    return std::nullopt;
  }

  /// Finds all races and classifies each as confined iff both conflicting
  /// footprints touch only addresses in \p Region (the object data of
  /// Sec. 7.1; such races are the paper's confined benign races).
  std::vector<RaceWitness> findRacesConfinedTo(const AddrSet &Region) const {
    std::vector<RaceWitness> Out;
    std::set<std::string> Dedup;
    for (const Node &N : Nodes) {
      if (!N.W.racePredictable())
        continue;
      unsigned NT = N.W.numThreads();
      std::vector<std::vector<InstrFootprint>> Preds(NT);
      for (ThreadId T = 0; T < NT; ++T)
        Preds[T] = N.W.predictFor(T);
      for (ThreadId T1 = 0; T1 < NT; ++T1) {
        for (ThreadId T2 = T1 + 1; T2 < NT; ++T2) {
          for (const InstrFootprint &F1 : Preds[T1]) {
            for (const InstrFootprint &F2 : Preds[T2]) {
              if (!F1.conflictsWith(F2))
                continue;
              RaceWitness W;
              W.T1 = T1;
              W.T2 = T2;
              W.FP1 = F1;
              W.FP2 = F2;
              W.Confined = F1.FP.asSet().subsetOf(Region) &&
                           F2.FP.asSet().subsetOf(Region);
              std::string Key = std::to_string(T1) + "/" +
                                std::to_string(T2) + ":" +
                                F1.FP.toString() + F2.FP.toString();
              if (Dedup.insert(Key).second) {
                W.StateKey = N.W.key();
                Out.push_back(W);
              }
            }
          }
        }
      }
    }
    return Out;
  }

private:
  struct Edge {
    unsigned To = 0;
    GLabel::Kind K = GLabel::Kind::Tau;
    int64_t Ev = 0;
  };

  struct Node {
    WorldT W;
    std::vector<Edge> Out;
    bool Expanded = false;
    bool Frontier = false;
    bool Div = false;
  };

  unsigned intern(const WorldT &W) {
    std::string Key = W.key();
    auto It = KeyToIdx.find(Key);
    if (It != KeyToIdx.end())
      return It->second;
    unsigned Idx = static_cast<unsigned>(Nodes.size());
    Nodes.push_back(Node{W, {}, false, false, false});
    KeyToIdx.emplace(std::move(Key), Idx);
    return Idx;
  }

  /// Marks every node with an infinite silent path that makes real
  /// progress: nodes that can reach (via non-event edges) a cycle
  /// containing at least one tau step. Pure context-switch chatter (sw
  /// cycles) is not divergence — the paper's global messages distinguish
  /// tau from sw, and the equivalence of Lemma 9 is stated modulo
  /// switches. Uses iterative Tarjan SCC on the silent-edge subgraph.
  void computeDivergence() {
    const unsigned N = static_cast<unsigned>(Nodes.size());
    std::vector<std::vector<unsigned>> Silent(N);
    for (unsigned I = 0; I < N; ++I)
      for (const Edge &E : Nodes[I].Out)
        if (E.K != GLabel::Kind::Event)
          Silent[I].push_back(E.To);

    // Iterative Tarjan.
    std::vector<int> Index(N, -1), Low(N, 0), Comp(N, -1);
    std::vector<bool> OnStack(N, false);
    std::vector<unsigned> Stack;
    std::vector<bool> InCycle(N, false);
    int NextIndex = 0, NextComp = 0;
    struct DfsFrame {
      unsigned V;
      unsigned EdgeIdx;
    };
    for (unsigned Root = 0; Root < N; ++Root) {
      if (Index[Root] != -1)
        continue;
      std::vector<DfsFrame> Dfs;
      Dfs.push_back({Root, 0});
      Index[Root] = Low[Root] = NextIndex++;
      Stack.push_back(Root);
      OnStack[Root] = true;
      while (!Dfs.empty()) {
        DfsFrame &F = Dfs.back();
        if (F.EdgeIdx < Silent[F.V].size()) {
          unsigned W = Silent[F.V][F.EdgeIdx++];
          if (Index[W] == -1) {
            Index[W] = Low[W] = NextIndex++;
            Stack.push_back(W);
            OnStack[W] = true;
            Dfs.push_back({W, 0});
          } else if (OnStack[W]) {
            Low[F.V] = std::min(Low[F.V], Index[W]);
          }
        } else {
          if (Low[F.V] == Index[F.V]) {
            std::vector<unsigned> Members;
            while (true) {
              unsigned W = Stack.back();
              Stack.pop_back();
              OnStack[W] = false;
              Comp[W] = NextComp;
              Members.push_back(W);
              if (W == F.V)
                break;
            }
            ++NextComp;
            // The SCC diverges iff it contains an internal tau edge (any
            // internal edge of an SCC lies on a cycle).
            bool Cyclic = false;
            for (unsigned M : Members) {
              for (const Edge &E : Nodes[M].Out) {
                if (E.K == GLabel::Kind::Tau && Comp[E.To] == Comp[M]) {
                  Cyclic = true;
                  break;
                }
              }
              if (Cyclic)
                break;
            }
            if (Cyclic)
              for (unsigned M : Members)
                InCycle[M] = true;
          }
          unsigned V = F.V;
          Dfs.pop_back();
          if (!Dfs.empty())
            Low[Dfs.back().V] = std::min(Low[Dfs.back().V], Low[V]);
        }
      }
    }

    // Backward reachability: Div = can reach an in-cycle node silently.
    std::vector<std::vector<unsigned>> RevSilent(N);
    for (unsigned I = 0; I < N; ++I)
      for (unsigned S : Silent[I])
        RevSilent[S].push_back(I);
    std::deque<unsigned> Work;
    for (unsigned I = 0; I < N; ++I) {
      if (InCycle[I]) {
        Nodes[I].Div = true;
        Work.push_back(I);
      }
    }
    while (!Work.empty()) {
      unsigned I = Work.front();
      Work.pop_front();
      for (unsigned P : RevSilent[I]) {
        if (!Nodes[P].Div) {
          Nodes[P].Div = true;
          Work.push_back(P);
        }
      }
    }
  }

  ExploreOptions Opts;
  std::vector<Node> Nodes;
  std::map<std::string, unsigned> KeyToIdx;
  std::vector<unsigned> InitIdx;
  unsigned NumExpanded = 0;
  bool Truncated = false;
};

} // namespace ccc

#endif // CASCC_CORE_EXPLORER_H
