//===- cimp/CImpParser.cpp - Parser for CImp -------------------------------===//

#include "cimp/CImpParser.h"

#include "support/Lexer.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace ccc;
using namespace ccc::cimp;

namespace {

class Parser {
public:
  Parser(TokenStream Toks, std::string &Error)
      : Toks(std::move(Toks)), Error(Error) {}

  std::shared_ptr<Module> parse() {
    auto M = std::make_shared<Module>();
    while (!Toks.atEnd()) {
      if (Toks.acceptIdent("global")) {
        if (!parseGlobal(*M))
          return nullptr;
        continue;
      }
      if (!parseFunction(*M))
        return nullptr;
    }
    return M;
  }

private:
  bool fail(const std::string &Msg) {
    Error = "CImp parse error (line " + std::to_string(Toks.line()) +
            "): " + Msg;
    return false;
  }

  bool expect(const std::string &Sym) {
    if (Toks.accept(Sym))
      return true;
    return fail("expected '" + Sym + "', got '" + Toks.peek().Text + "'");
  }

  bool expectIdent(std::string &Out) {
    if (!Toks.peek().is(Token::Kind::Ident))
      return fail("expected identifier, got '" + Toks.peek().Text + "'");
    Out = Toks.next().Text;
    return true;
  }

  bool parseGlobal(Module &M) {
    std::string Name;
    if (!expectIdent(Name) || !expect("="))
      return false;
    bool Negative = Toks.accept("-");
    if (!Toks.peek().is(Token::Kind::Int))
      return fail("expected integer initializer");
    int64_t V = Toks.next().IntVal;
    if (Negative)
      V = -V;
    if (!expect(";"))
      return false;
    M.Globals.emplace_back(Name, static_cast<int32_t>(V));
    GlobalNames.push_back(Name);
    return true;
  }

  bool parseFunction(Module &M) {
    Function F;
    if (!expectIdent(F.Name) || !expect("("))
      return false;
    if (!Toks.accept(")")) {
      while (true) {
        std::string P;
        if (!expectIdent(P))
          return false;
        F.Params.push_back(P);
        if (Toks.accept(")"))
          break;
        if (!expect(","))
          return false;
      }
    }
    if (!expect("{"))
      return false;
    if (!parseStmts(F.Body, "}"))
      return false;
    M.Funcs.push_back(std::move(F));
    return true;
  }

  /// Parses statements until \p Closer is consumed.
  bool parseStmts(Block &Out, const std::string &Closer) {
    while (!Toks.accept(Closer)) {
      if (Toks.atEnd())
        return fail("unexpected end of input; missing '" + Closer + "'");
      StmtPtr S = parseStmt();
      if (!S)
        return false;
      Out.push_back(std::move(S));
    }
    return true;
  }

  StmtPtr parseStmt() {
    auto S = std::make_unique<Stmt>();
    const Token &T = Toks.peek();

    if (T.isIdent("skip")) {
      Toks.next();
      S->K = Stmt::Kind::Skip;
      if (!expect(";"))
        return nullptr;
      return S;
    }
    if (T.isIdent("if")) {
      Toks.next();
      S->K = Stmt::Kind::If;
      if (!expect("("))
        return nullptr;
      S->E1 = parseExpr();
      if (!S->E1 || !expect(")") || !expect("{"))
        return nullptr;
      if (!parseStmts(S->Body, "}"))
        return nullptr;
      if (Toks.acceptIdent("else")) {
        if (!expect("{") || !parseStmts(S->Else, "}"))
          return nullptr;
      }
      return S;
    }
    if (T.isIdent("while")) {
      Toks.next();
      S->K = Stmt::Kind::While;
      if (!expect("("))
        return nullptr;
      S->E1 = parseExpr();
      if (!S->E1 || !expect(")") || !expect("{"))
        return nullptr;
      if (!parseStmts(S->Body, "}"))
        return nullptr;
      return S;
    }
    if (T.isIdent("assert")) {
      Toks.next();
      S->K = Stmt::Kind::Assert;
      if (!expect("("))
        return nullptr;
      S->E1 = parseExpr();
      if (!S->E1 || !expect(")") || !expect(";"))
        return nullptr;
      return S;
    }
    if (T.isIdent("print")) {
      Toks.next();
      S->K = Stmt::Kind::Print;
      if (!expect("("))
        return nullptr;
      S->E1 = parseExpr();
      if (!S->E1 || !expect(")") || !expect(";"))
        return nullptr;
      return S;
    }
    if (T.isIdent("spawn")) {
      Toks.next();
      S->K = Stmt::Kind::Spawn;
      if (!expectIdent(S->Callee))
        return nullptr;
      if (!parseCallArgs(*S))
        return nullptr;
      return S;
    }
    if (T.isIdent("return")) {
      Toks.next();
      S->K = Stmt::Kind::Return;
      if (!Toks.peek().isSymbol(";")) {
        S->E1 = parseExpr();
        if (!S->E1)
          return nullptr;
      }
      if (!expect(";"))
        return nullptr;
      return S;
    }
    if (T.isSymbol("<")) {
      Toks.next();
      S->K = Stmt::Kind::Atomic;
      if (!parseStmts(S->Body, ">"))
        return nullptr;
      return S;
    }
    if (T.isSymbol("[")) {
      Toks.next();
      S->K = Stmt::Kind::Store;
      S->E1 = parseExpr();
      if (!S->E1 || !expect("]") || !expect(":=") ||
          !(S->E2 = parseExpr()) || !expect(";"))
        return nullptr;
      return S;
    }
    if (T.is(Token::Kind::Ident)) {
      std::string Name = Toks.next().Text;
      if (Toks.accept(":=")) {
        if (Toks.accept("[")) {
          S->K = Stmt::Kind::Load;
          S->Dst = Name;
          S->E1 = parseExpr();
          if (!S->E1 || !expect("]") || !expect(";"))
            return nullptr;
          return S;
        }
        // Call-with-result: ident := callee(args);
        if (Toks.peek().is(Token::Kind::Ident) &&
            Toks.peek(1).isSymbol("(")) {
          S->K = Stmt::Kind::Call;
          S->Dst = Name;
          S->Callee = Toks.next().Text;
          if (!parseCallArgs(*S))
            return nullptr;
          return S;
        }
        S->K = Stmt::Kind::Assign;
        S->Dst = Name;
        S->E1 = parseExpr();
        if (!S->E1 || !expect(";"))
          return nullptr;
        return S;
      }
      if (Toks.peek().isSymbol("(")) {
        S->K = Stmt::Kind::Call;
        S->Callee = Name;
        if (!parseCallArgs(*S))
          return nullptr;
        return S;
      }
      fail("unexpected identifier '" + Name + "'");
      return nullptr;
    }
    fail("unexpected token '" + T.Text + "'");
    return nullptr;
  }

  bool parseCallArgs(Stmt &S) {
    if (!expect("("))
      return false;
    if (!Toks.accept(")")) {
      while (true) {
        ExprPtr A = parseExpr();
        if (!A)
          return false;
        S.Args.push_back(std::move(A));
        if (Toks.accept(")"))
          break;
        if (!expect(","))
          return false;
      }
    }
    return expect(";");
  }

  // Expression precedence: || < && < comparisons < +- < */ < unary.
  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    while (L && Toks.accept("||"))
      L = makeBin(BinOp::Or, std::move(L), parseAnd());
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseCmp();
    while (L && Toks.accept("&&"))
      L = makeBin(BinOp::And, std::move(L), parseCmp());
    return L;
  }

  ExprPtr parseCmp() {
    ExprPtr L = parseAdd();
    while (L) {
      if (Toks.accept("=="))
        L = makeBin(BinOp::Eq, std::move(L), parseAdd());
      else if (Toks.accept("!="))
        L = makeBin(BinOp::Ne, std::move(L), parseAdd());
      else if (Toks.accept("<="))
        L = makeBin(BinOp::Le, std::move(L), parseAdd());
      else if (Toks.accept(">="))
        L = makeBin(BinOp::Ge, std::move(L), parseAdd());
      else if (Toks.peek().isSymbol("<") && !isAtomicOpen())
        L = (Toks.next(), makeBin(BinOp::Lt, std::move(L), parseAdd()));
      else if (Toks.accept(">"))
        L = makeBin(BinOp::Gt, std::move(L), parseAdd());
      else
        break;
    }
    return L;
  }

  /// Heuristic: '<' directly followed by a statement keyword or at a
  /// position where an atomic block could start is not a comparison. In
  /// expression position '<' is always a comparison, so this only guards
  /// the degenerate case "a < <".
  bool isAtomicOpen() const { return Toks.peek(1).isSymbol("<"); }

  ExprPtr parseAdd() {
    ExprPtr L = parseMul();
    while (L) {
      if (Toks.accept("+"))
        L = makeBin(BinOp::Add, std::move(L), parseMul());
      else if (Toks.accept("-"))
        L = makeBin(BinOp::Sub, std::move(L), parseMul());
      else
        break;
    }
    return L;
  }

  ExprPtr parseMul() {
    ExprPtr L = parseUnary();
    while (L) {
      if (Toks.accept("*"))
        L = makeBin(BinOp::Mul, std::move(L), parseUnary());
      else if (Toks.accept("/"))
        L = makeBin(BinOp::Div, std::move(L), parseUnary());
      else
        break;
    }
    return L;
  }

  ExprPtr parseUnary() {
    if (Toks.accept("-")) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Un;
      E->U = UnOp::Neg;
      E->L = parseUnary();
      return E->L ? std::move(E) : nullptr;
    }
    if (Toks.accept("!")) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Un;
      E->U = UnOp::Not;
      E->L = parseUnary();
      return E->L ? std::move(E) : nullptr;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const Token &T = Toks.peek();
    if (T.is(Token::Kind::Int)) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::IntConst;
      E->IntVal = static_cast<int32_t>(Toks.next().IntVal);
      return E;
    }
    if (T.is(Token::Kind::Ident)) {
      auto E = std::make_unique<Expr>();
      std::string Name = Toks.next().Text;
      bool IsGlobal = false;
      for (const std::string &G : GlobalNames)
        if (G == Name)
          IsGlobal = true;
      E->K = IsGlobal ? Expr::Kind::GlobalAddr : Expr::Kind::Reg;
      E->Name = std::move(Name);
      return E;
    }
    if (Toks.accept("(")) {
      ExprPtr E = parseExpr();
      if (!E || !expect(")"))
        return nullptr;
      return E;
    }
    fail("expected expression, got '" + T.Text + "'");
    return nullptr;
  }

  ExprPtr makeBin(BinOp B, ExprPtr L, ExprPtr R) {
    if (!L || !R)
      return nullptr;
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Bin;
    E->B = B;
    E->L = std::move(L);
    E->R = std::move(R);
    return E;
  }

  TokenStream Toks;
  std::string &Error;
  std::vector<std::string> GlobalNames;
};

} // namespace

std::shared_ptr<Module> ccc::cimp::parseModule(const std::string &Source,
                                               std::string &Error) {
  static const std::vector<std::string> Symbols = {
      "(",  ")", "{",  "}",  "[",  "]",  ";",  ",",  ":=", "==", "!=",
      "<=", ">=", "&&", "||", "<",  ">",  "+",  "-",  "*",  "/",  "!",
      "="};
  std::vector<Token> Toks;
  if (!tokenize(Source, Symbols, Toks, Error))
    return nullptr;
  Parser P(TokenStream(std::move(Toks)), Error);
  return P.parse();
}

std::shared_ptr<Module>
ccc::cimp::parseModuleOrDie(const std::string &Source) {
  std::string Error;
  auto M = parseModule(Source, Error);
  if (!M) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    std::abort();
  }
  return M;
}
