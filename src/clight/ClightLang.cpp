//===- clight/ClightLang.cpp - Clight instantiation of the framework ------===//

#include "clight/ClightLang.h"

#include "clight/ClightParser.h"
#include "support/StrUtil.h"

#include <cassert>

using namespace ccc;
using namespace ccc::clight;

namespace {

struct KontItem {
  enum class Kind { Stmt, StoreRet };
  Kind K = Kind::Stmt;
  const Stmt *S = nullptr;
  std::string Dst; // StoreRet destination (may be empty = discard)
};

/// The Clight core: the executing function, its continuation, the
/// allocation phase, and the pending return value of an external call.
class ClightCore : public Core {
public:
  const Function *F = nullptr;
  bool Allocated = false;
  std::vector<Value> EntryArgs; // held until the allocation step
  std::vector<KontItem> Kont;   // back() is next
  Value PendingVal;
  bool HasPending = false;

  std::string key() const override {
    StrBuilder B;
    B << 'f' << reinterpret_cast<uintptr_t>(F) << (Allocated ? 'A' : 'U');
    if (HasPending)
      B << "p" << PendingVal.toString();
    for (const KontItem &I : Kont) {
      if (I.K == KontItem::Kind::Stmt)
        B << 's' << reinterpret_cast<uintptr_t>(I.S) << ';';
      else
        B << "sr:" << I.Dst << ';';
    }
    if (!Allocated) {
      B << "|args:";
      for (const Value &V : EntryArgs)
        B << V.toString() << ',';
    }
    return B.take();
  }

  void residueBytes(ResidueBuf &B) const override {
    B.ptr(F);
    B.word((Allocated ? 1u : 0u) | (HasPending ? 2u : 0u));
    if (HasPending) {
      B.word(static_cast<uint32_t>(PendingVal.kind()));
      B.word(PendingVal.rawBits());
    }
    B.word(static_cast<uint32_t>(Kont.size()));
    for (const KontItem &I : Kont) {
      B.word(static_cast<uint32_t>(I.K));
      if (I.K == KontItem::Kind::Stmt)
        B.ptr(I.S);
      else
        B.word(B.internString(I.Dst));
    }
    // Mirrors key(): entry args are part of the state only until the
    // allocation step consumes them.
    if (!Allocated)
      for (const Value &V : EntryArgs) {
        B.word(static_cast<uint32_t>(V.kind()));
        B.word(V.rawBits());
      }
  }
};

void pushBlock(std::vector<KontItem> &Kont, const Block &B) {
  for (auto It = B.rbegin(); It != B.rend(); ++It)
    Kont.push_back(KontItem{KontItem::Kind::Stmt, It->get(), {}});
}

/// Index of \p Name among the function's slots, or -1.
int slotIndex(const Function &F, const std::string &Name) {
  int Idx = 0;
  for (const VarDecl &P : F.Params) {
    if (P.Name == Name)
      return Idx;
    ++Idx;
  }
  for (const VarDecl &L : F.Locals) {
    if (L.Name == Name)
      return Idx;
    ++Idx;
  }
  return -1;
}

} // namespace

ClightLang::ClightLang(std::shared_ptr<const Module> M) : Mod(std::move(M)) {}

ClightLang::~ClightLang() = default;

CoreRef ClightLang::initCore(const std::string &Entry,
                             const std::vector<Value> &Args) const {
  const Function *F = Mod->find(Entry);
  if (!F || F->Params.size() != Args.size())
    return nullptr;
  auto C = std::make_shared<ClightCore>();
  C->F = F;
  C->EntryArgs = Args;
  C->Allocated = false;
  pushBlock(C->Kont, F->Body);
  return C;
}

namespace {

/// Resolves the address of variable \p Name: function slot first, then
/// module global.
std::optional<Addr> varAddr(const Function &F, const FreeList &FL,
                            const GlobalEnv &GE, const std::string &Name) {
  int Idx = slotIndex(F, Name);
  if (Idx >= 0)
    return FL.at(static_cast<uint32_t>(Idx));
  return GE.lookup(Name);
}

std::optional<Value> evalExpr(const Expr &E, const Function &F,
                              const FreeList &FL, const GlobalEnv &GE,
                              const Mem &M, Footprint &FP) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    return Value::makeInt(E.IntVal);
  case Expr::Kind::Var: {
    auto A = varAddr(F, FL, GE, E.Name);
    if (!A)
      return std::nullopt;
    auto V = M.load(*A);
    if (!V)
      return std::nullopt;
    FP.addRead(*A);
    return V;
  }
  case Expr::Kind::AddrOfGlobal: {
    auto A = GE.lookup(E.Name);
    if (!A)
      return std::nullopt;
    return Value::makePtr(*A);
  }
  case Expr::Kind::Un: {
    auto V = evalExpr(*E.L, F, FL, GE, M, FP);
    if (!V)
      return std::nullopt;
    if (E.U == UnOp::Deref) {
      if (!V->isPtr())
        return std::nullopt;
      auto Loaded = M.load(V->asPtr());
      if (!Loaded)
        return std::nullopt;
      FP.addRead(V->asPtr());
      return Loaded;
    }
    if (!V->isInt())
      return std::nullopt;
    if (E.U == UnOp::Neg)
      return Value::makeInt(static_cast<int32_t>(
          -static_cast<uint32_t>(V->asInt())));
    return Value::makeInt(V->asInt() == 0 ? 1 : 0);
  }
  case Expr::Kind::Bin: {
    auto L = evalExpr(*E.L, F, FL, GE, M, FP);
    auto R = evalExpr(*E.R, F, FL, GE, M, FP);
    if (!L || !R)
      return std::nullopt;
    if (L->isPtr() || R->isPtr()) {
      if (E.B == BinOp::Eq)
        return Value::makeInt(*L == *R ? 1 : 0);
      if (E.B == BinOp::Ne)
        return Value::makeInt(*L == *R ? 0 : 1);
      return std::nullopt;
    }
    if (!L->isInt() || !R->isInt())
      return std::nullopt;
    int32_t A = L->asInt(), B = R->asInt();
    auto Wrap = [](int64_t V) {
      return Value::makeInt(static_cast<int32_t>(static_cast<uint32_t>(V)));
    };
    switch (E.B) {
    case BinOp::Add:
      return Wrap(static_cast<int64_t>(A) + B);
    case BinOp::Sub:
      return Wrap(static_cast<int64_t>(A) - B);
    case BinOp::Mul:
      return Wrap(static_cast<int64_t>(A) * B);
    case BinOp::Div:
      if (B == 0)
        return std::nullopt;
      return Wrap(static_cast<int64_t>(A) / B);
    case BinOp::Mod:
      if (B == 0)
        return std::nullopt;
      return Wrap(static_cast<int64_t>(A) % B);
    case BinOp::Eq:
      return Value::makeInt(A == B ? 1 : 0);
    case BinOp::Ne:
      return Value::makeInt(A != B ? 1 : 0);
    case BinOp::Lt:
      return Value::makeInt(A < B ? 1 : 0);
    case BinOp::Le:
      return Value::makeInt(A <= B ? 1 : 0);
    case BinOp::Gt:
      return Value::makeInt(A > B ? 1 : 0);
    case BinOp::Ge:
      return Value::makeInt(A >= B ? 1 : 0);
    case BinOp::And:
      return Value::makeInt((A != 0 && B != 0) ? 1 : 0);
    case BinOp::Or:
      return Value::makeInt((A != 0 || B != 0) ? 1 : 0);
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

} // namespace

std::vector<LocalStep> ClightLang::step(const FreeList &FL, const Core &C,
                                        const Mem &M) const {
  const auto &Cr = static_cast<const ClightCore &>(C);
  const Function &F = *Cr.F;
  std::vector<LocalStep> Out;
  auto abort = [&Out](const std::string &R) {
    Out.push_back(LocalStep::abort("Clight: " + R));
  };

  // -- Local allocation (the first step of every function).
  if (!Cr.Allocated) {
    unsigned Slots = F.numSlots();
    if (Slots > FL.size()) {
      abort("locals exceed the free list");
      return Out;
    }
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    for (unsigned I = 0; I < Slots; ++I) {
      // Frame regions are reused after returns (stack discipline), so the
      // cell may already be allocated: allocFrame overwrites it.
      Addr A = FL.at(I);
      Value Init = I < Cr.EntryArgs.size() ? Cr.EntryArgs[I]
                                           : Value::makeUndef();
      S.NextMem.allocFrame(A, Init);
      S.FP.addWrite(A);
    }
    auto N = std::make_shared<ClightCore>(Cr);
    N->Allocated = true;
    N->EntryArgs.clear();
    S.Next = std::move(N);
    Out.push_back(std::move(S));
    return Out;
  }

  // -- Function end: implicit return.
  if (Cr.Kont.empty()) {
    LocalStep S;
    S.M = Msg::ret(Value::makeInt(0));
    S.NextMem = M;
    S.Next = std::make_shared<ClightCore>(Cr);
    Out.push_back(std::move(S));
    return Out;
  }

  const KontItem Top = Cr.Kont.back();
  auto popped = [&Cr]() {
    auto N = std::make_shared<ClightCore>(Cr);
    N->Kont.pop_back();
    return N;
  };

  // -- Store the pending external-call result.
  if (Top.K == KontItem::Kind::StoreRet) {
    if (!Cr.HasPending) {
      abort("core stepped while awaiting a return");
      return Out;
    }
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    auto N = popped();
    N->HasPending = false;
    if (!Top.Dst.empty()) {
      auto A = varAddr(F, FL, *Globals, Top.Dst);
      if (!A || !S.NextMem.store(*A, Cr.PendingVal)) {
        abort("bad call-result destination");
        return Out;
      }
      S.FP.addWrite(*A);
    }
    S.Next = std::move(N);
    Out.push_back(std::move(S));
    return Out;
  }

  const Stmt &St = *Top.S;
  Footprint FP;
  auto eval = [&](const Expr &E) {
    return evalExpr(E, F, FL, *Globals, M, FP);
  };
  auto finish = [&](Msg Ms, CoreRef Next, Mem NM) {
    LocalStep S;
    S.M = std::move(Ms);
    S.FP = FP;
    S.NextMem = std::move(NM);
    S.Next = std::move(Next);
    Out.push_back(std::move(S));
  };

  switch (St.K) {
  case Stmt::Kind::Skip: {
    finish(Msg::tau(), popped(), M);
    break;
  }
  case Stmt::Kind::AssignVar: {
    auto V = eval(*St.E1);
    auto A = varAddr(F, FL, *Globals, St.Dst);
    if (!V || !A) {
      abort("bad assignment");
      break;
    }
    Mem NM = M;
    if (!NM.store(*A, *V)) {
      abort("assignment to unallocated address");
      break;
    }
    FP.addWrite(*A);
    finish(Msg::tau(), popped(), std::move(NM));
    break;
  }
  case Stmt::Kind::AssignDeref: {
    auto Ptr = eval(*St.E1);
    auto V = eval(*St.E2);
    if (!Ptr || !Ptr->isPtr() || !V) {
      abort("bad store through pointer");
      break;
    }
    Mem NM = M;
    if (!NM.store(Ptr->asPtr(), *V)) {
      abort("store to unallocated address");
      break;
    }
    FP.addWrite(Ptr->asPtr());
    finish(Msg::tau(), popped(), std::move(NM));
    break;
  }
  case Stmt::Kind::If: {
    auto V = eval(*St.E1);
    if (!V || !V->isInt()) {
      abort("bad if condition");
      break;
    }
    auto N = popped();
    pushBlock(N->Kont, V->asInt() != 0 ? St.Body : St.Else);
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case Stmt::Kind::While: {
    auto V = eval(*St.E1);
    if (!V || !V->isInt()) {
      abort("bad while condition");
      break;
    }
    auto N = std::make_shared<ClightCore>(Cr);
    if (V->asInt() != 0)
      pushBlock(N->Kont, St.Body);
    else
      N->Kont.pop_back();
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case Stmt::Kind::Call: {
    std::vector<Value> Args;
    bool Bad = false;
    for (const ExprPtr &AE : St.Args) {
      auto V = eval(*AE);
      if (!V) {
        Bad = true;
        break;
      }
      Args.push_back(*V);
    }
    if (Bad) {
      abort("bad call argument");
      break;
    }
    auto N = popped();
    N->Kont.push_back(KontItem{KontItem::Kind::StoreRet, nullptr, St.Dst});
    finish(Msg::extCall(St.Callee, std::move(Args)), std::move(N), M);
    break;
  }
  case Stmt::Kind::Return: {
    Value V = Value::makeInt(0);
    if (St.E1) {
      auto E = eval(*St.E1);
      if (!E) {
        abort("bad return expression");
        break;
      }
      V = *E;
    }
    auto N = std::make_shared<ClightCore>(Cr);
    N->Kont.clear();
    finish(Msg::ret(V), std::move(N), M);
    break;
  }
  case Stmt::Kind::Print: {
    auto V = eval(*St.E1);
    if (!V || !V->isInt()) {
      abort("print needs an integer");
      break;
    }
    finish(Msg::event(V->asInt()), popped(), M);
    break;
  }
  }
  return Out;
}

bool ClightLang::porPoints(const FreeList &F, const Core &C,
                           std::vector<PorPoint> &Out,
                           EffectSummary &Extra) const {
  (void)F;
  const auto &Cr = static_cast<const ClightCore &>(C);
  // The allocation step writes the function's local slots, all inside the
  // thread's own frame region.
  if (!Cr.Allocated)
    Extra.OwnW = true;
  for (auto It = Cr.Kont.rbegin(); It != Cr.Kont.rend(); ++It) {
    if (It->K == KontItem::Kind::Stmt) {
      Out.push_back(PorPoint{It->S, 0});
      continue;
    }
    // StoreRet: writes the call result to a local slot (own frame) or to
    // a module global (concrete cell).
    if (It->Dst.empty())
      continue;
    if (slotIndex(*Cr.F, It->Dst) >= 0) {
      Extra.OwnW = true;
      continue;
    }
    auto A = Globals->lookup(It->Dst);
    if (!A)
      return false;
    Extra.addWrite(*A);
  }
  return true;
}

CoreRef ClightLang::applyReturn(const Core &C, const Value &V) const {
  const auto &Cr = static_cast<const ClightCore &>(C);
  if (Cr.Kont.empty() || Cr.Kont.back().K != KontItem::Kind::StoreRet)
    return nullptr;
  auto N = std::make_shared<ClightCore>(Cr);
  N->PendingVal = V;
  N->HasPending = true;
  return N;
}

unsigned ccc::clight::addClightModule(Program &P, const std::string &Name,
                                      const std::string &Source) {
  return addClightModule(P, Name, parseModuleOrDie(Source));
}

unsigned ccc::clight::addClightModule(Program &P, const std::string &Name,
                                      std::shared_ptr<const Module> M) {
  GlobalEnv GE;
  for (const auto &G : M->Globals)
    GE.declare(G.first, Value::makeInt(G.second), DataOwner::Client);
  return P.addModule(Name, std::make_unique<ClightLang>(M), std::move(GE));
}
