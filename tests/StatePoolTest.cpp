//===- tests/StatePoolTest.cpp - Slab pools for the state store ------------===//
//
// The allocation substrate under the binary state store: SlabVector's
// stable addresses and exact capacity accounting, and RecyclingPool's
// LIFO slot reuse, in-place construction/destruction, and monotone
// capacity.
//
//===----------------------------------------------------------------------===//

#include "core/StatePool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using namespace ccc;

TEST(SlabVector, ElementsSurviveGrowthWithStableAddresses) {
  SlabVector<uint64_t, 4> V; // 16-element chunks: growth every 16 pushes
  std::vector<uint64_t *> Addrs;
  for (uint64_t I = 0; I < 1000; ++I)
    Addrs.push_back(&V.push_back(I * 3 + 1));
  ASSERT_EQ(V.size(), 1000u);
  for (uint64_t I = 0; I < 1000; ++I) {
    EXPECT_EQ(V[I], I * 3 + 1);
    // No reallocation copies, ever: the address handed out at push time
    // is the element's address for the vector's whole lifetime.
    EXPECT_EQ(Addrs[I], &V[I]);
  }
}

TEST(SlabVector, StatsAccountCapacityExactly) {
  SlabVector<uint32_t, 4> V; // 16 elements = 64 bytes per slab
  PoolStats S0 = V.stats();
  EXPECT_EQ(S0.LiveBytes, 0u);
  EXPECT_EQ(S0.LiveObjects, 0u);

  for (uint32_t I = 0; I < 17; ++I) // spills into a second slab
    V.push_back(I);
  PoolStats S = V.stats();
  EXPECT_EQ(S.LiveObjects, 17u);
  EXPECT_EQ(S.LiveBytes, 17u * sizeof(uint32_t));
  // Two slabs reserved; capacity counts them in full, plus the chunk
  // pointer array — never less than live.
  EXPECT_GE(S.CapacityBytes, 2u * 16u * sizeof(uint32_t));
  EXPECT_GE(S.CapacityBytes, S.LiveBytes);
}

namespace {

struct Tracked {
  static inline int Alive = 0;
  int Value = 0;
  Tracked() { ++Alive; }
  explicit Tracked(int V) : Value(V) { ++Alive; }
  ~Tracked() { --Alive; }
};

} // namespace

TEST(RecyclingPool, ReusesReleasedSlotsLifo) {
  RecyclingPool<Tracked, 8> Pool;
  Tracked *A = Pool.acquire(1);
  Tracked *B = Pool.acquire(2);
  EXPECT_NE(A, B);
  EXPECT_EQ(A->Value, 1);
  EXPECT_EQ(B->Value, 2);
  EXPECT_EQ(Tracked::Alive, 2);

  Pool.release(B);
  EXPECT_EQ(Tracked::Alive, 1);
  // LIFO: the most recently released slot is handed out next, keeping
  // hot exploration loops on cache-warm memory.
  Tracked *C = Pool.acquire(3);
  EXPECT_EQ(C, B);
  EXPECT_EQ(C->Value, 3);

  Pool.release(A);
  Pool.release(C);
  EXPECT_EQ(Tracked::Alive, 0);
}

TEST(RecyclingPool, StatsTrackLiveAndMonotoneCapacity) {
  RecyclingPool<uint64_t, 4> Pool; // 4 objects per slab
  std::vector<uint64_t *> Objs;
  for (int I = 0; I < 9; ++I) // forces a third slab
    Objs.push_back(Pool.acquire());
  PoolStats Grown = Pool.stats();
  EXPECT_EQ(Grown.LiveObjects, 9u);
  EXPECT_EQ(Grown.LiveBytes, 9u * sizeof(uint64_t));
  EXPECT_GE(Grown.CapacityBytes, 3u * 4u * sizeof(uint64_t));

  for (uint64_t *O : Objs)
    Pool.release(O);
  PoolStats Drained = Pool.stats();
  EXPECT_EQ(Drained.LiveObjects, 0u);
  EXPECT_EQ(Drained.LiveBytes, 0u);
  // Slabs are never returned to the OS: capacity is a high-water mark.
  EXPECT_GE(Drained.CapacityBytes, Grown.CapacityBytes);

  // Re-acquiring after a full drain reuses existing slabs — no growth.
  for (int I = 0; I < 9; ++I)
    Pool.acquire();
  EXPECT_EQ(Pool.stats().CapacityBytes, Drained.CapacityBytes);
  EXPECT_EQ(Pool.stats().LiveObjects, 9u);
}

TEST(RecyclingPool, FreshSlabHandsOutAscendingAddresses) {
  RecyclingPool<uint32_t, 16> Pool;
  uint32_t *Prev = Pool.acquire();
  for (int I = 1; I < 16; ++I) {
    uint32_t *Next = Pool.acquire();
    EXPECT_EQ(Next, Prev + 1);
    Prev = Next;
  }
}
