//===- core/Core.h - Abstract module-local core states ----------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract "core" states (paper: kappa in Core, Fig. 4): the internal
/// state of a module's execution, such as a control continuation or a
/// register file. Cores are immutable and shared; every concrete language
/// provides its own subclass. A core must render a canonical key so the
/// exploration engines can memoize global states.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_CORE_H
#define CASCC_CORE_CORE_H

#include "core/BinResidue.h"
#include "support/Hashing.h"

#include <atomic>
#include <memory>
#include <string>

namespace ccc {

/// Base class of all language-specific core states.
class Core {
public:
  virtual ~Core();

  /// Canonical key uniquely identifying this core state within its module.
  virtual std::string key() const = 0;

  /// 64-bit hash of key(), computed once per core object and cached
  /// (cores are immutable once shared, so the key cannot change under the
  /// cache). Equal cores hash equally; the exploration engine never
  /// merges on hash alone.
  uint64_t keyHash() const {
    uint64_t H = CachedKeyHash.load(std::memory_order_relaxed);
    if (H == 0) {
      H = hashString64(key());
      H += H == 0; // reserve 0 as the "not yet computed" sentinel
      CachedKeyHash.store(H, std::memory_order_relaxed);
    }
    return H;
  }

  /// Emits the binary residue encoding of this core into \p B:
  /// fixed-width words whose sequence-equality coincides exactly with
  /// key()-equality for cores of the same language. Languages override
  /// this to stop materializing key() strings per state; the fallback
  /// interns the string key once and emits its id (correct for any
  /// language, just slower on the first encounter of each core value).
  virtual void residueBytes(ResidueBuf &B) const {
    B.word(B.internString(key()));
  }

  /// Interns this core's residue encoding as a tree node and returns the
  /// node id, cached per store epoch (cores are immutable once shared, so
  /// the encoding cannot change under the cache). Benignly racy like
  /// keyHash(): concurrent encoders compute the same id.
  uint32_t residueRoot(ResidueBuf &B) const {
    uint64_t Cached = CachedResidueId.load(std::memory_order_relaxed);
    uint32_t Id;
    if (B.store().cacheHit(Cached, Id))
      return Id;
    Id = B.subIntern([&] { residueBytes(B); });
    CachedResidueId.store(B.store().cacheWord(Id), std::memory_order_relaxed);
    return Id;
  }

  /// Human-readable rendering (defaults to the key).
  virtual std::string pretty() const { return key(); }

protected:
  Core() = default;
  /// Languages copy-construct a core and mutate it before sharing, so a
  /// copy must start with an empty hash cache (and the atomic member
  /// deletes the defaults).
  Core(const Core &) : Core() {}
  Core &operator=(const Core &) { return *this; }

private:
  /// Lazily computed keyHash(); 0 = not yet computed. Benignly racy:
  /// concurrent readers compute the same value.
  mutable std::atomic<uint64_t> CachedKeyHash{0};

  /// Cached residueRoot() packed as (store epoch << 32) | node id;
  /// 0 = empty. Cores are shared across Explorer instances, so the
  /// epoch tells which store the id belongs to.
  mutable std::atomic<uint64_t> CachedResidueId{0};
};

using CoreRef = std::shared_ptr<const Core>;

} // namespace ccc

#endif // CASCC_CORE_CORE_H
