//===- compiler/RTLOpt.cpp - Tailcall and Renumber RTL passes --------------===//

#include "compiler/Passes.h"

#include <deque>
#include <map>

using namespace ccc;
using namespace ccc::compiler;

std::shared_ptr<rtl::Module>
ccc::compiler::tailcall(const rtl::Module &M) {
  auto Out = std::make_shared<rtl::Module>(M);
  for (rtl::Function &F : Out->Funcs) {
    for (auto &KV : F.Graph) {
      rtl::Instr &I = KV.second;
      if (I.K != rtl::Instr::Kind::Call)
        continue;
      auto SuccIt = F.Graph.find(I.S1);
      if (SuccIt == F.Graph.end())
        continue;
      const rtl::Instr &Next = SuccIt->second;
      if (Next.K != rtl::Instr::Kind::Return)
        continue;
      // call r := f(args); return r  ==>  tailcall f(args)
      // call f(args); return        ==>  tailcall f(args)
      // (void functions return 0 under our convention, so the callee's
      // result is exactly what the caller would have returned.)
      bool Matches = false;
      if (!Next.HasArg && !I.HasDst)
        Matches = true;
      else if (Next.HasArg && I.HasDst && Next.Args[0] == I.Dst)
        Matches = true;
      if (!Matches)
        continue;
      I.K = rtl::Instr::Kind::Tailcall;
      I.HasDst = false;
      I.S1 = 0;
    }
  }
  return Out;
}

std::shared_ptr<rtl::Module>
ccc::compiler::renumber(const rtl::Module &M) {
  auto Out = std::make_shared<rtl::Module>();
  Out->Globals = M.Globals;
  for (const rtl::Function &F : M.Funcs) {
    rtl::Function NF;
    NF.Name = F.Name;
    NF.RetVoid = F.RetVoid;
    NF.NumParams = F.NumParams;
    NF.ParamHomes = F.ParamHomes;
    NF.NumRegs = F.NumRegs;

    // Breadth-first numbering from the entry; unreachable nodes vanish.
    std::map<unsigned, unsigned> NewId;
    std::deque<unsigned> Work;
    auto visit = [&](unsigned Node) {
      if (!NewId.count(Node) && F.Graph.count(Node)) {
        unsigned Id = static_cast<unsigned>(NewId.size());
        NewId[Node] = Id;
        Work.push_back(Node);
      }
    };
    visit(F.Entry);
    while (!Work.empty()) {
      unsigned Node = Work.front();
      Work.pop_front();
      const rtl::Instr &I = F.Graph.at(Node);
      if (I.K != rtl::Instr::Kind::Return &&
          I.K != rtl::Instr::Kind::Tailcall) {
        visit(I.S1);
        if (I.K == rtl::Instr::Kind::Cond)
          visit(I.S2);
      }
    }

    for (const auto &KV : F.Graph) {
      auto It = NewId.find(KV.first);
      if (It == NewId.end())
        continue;
      rtl::Instr I = KV.second;
      if (I.K != rtl::Instr::Kind::Return &&
          I.K != rtl::Instr::Kind::Tailcall) {
        I.S1 = NewId.at(I.S1);
        if (I.K == rtl::Instr::Kind::Cond)
          I.S2 = NewId.at(I.S2);
      }
      NF.Graph[It->second] = std::move(I);
    }
    NF.Entry = NewId.at(F.Entry);
    Out->Funcs.push_back(std::move(NF));
  }
  return Out;
}
