//===- tests/StaticRaceTest.cpp - Static DRF certifier ---------------------===//
//
// The Eraser-style lockset analysis (analysis/StaticRace.h): protected,
// unprotected, and benign/thread-confined access patterns, the E3
// gamma_lock / pi_lock clients, and the soundness cross-check against the
// dynamic Race rule of Fig. 9 over every src/workload program family:
// a static DRF certificate must imply the dynamic detector finds no race,
// and every dynamically racy control must be flagged (or conservatively
// declined) statically.
//
//===----------------------------------------------------------------------===//

#include "analysis/RaceDetector.h"
#include "analysis/StaticRace.h"
#include "cimp/CImpLang.h"
#include "clight/ClightLang.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::analysis;

namespace {

Program cimpProgram(const std::string &Source,
                    const std::vector<std::string> &Threads,
                    bool WithLock = false) {
  Program P;
  cimp::addCImpModule(P, "client", Source);
  if (WithLock)
    sync::addGammaLock(P);
  for (const std::string &T : Threads)
    P.addThread(T);
  P.link();
  return P;
}

// --- protected patterns --------------------------------------------------

TEST(StaticRace, LockProtectedCounterIsCertified) {
  Program P = workload::lockedCounter(2, 2, 1);
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Certified) << R.toString();
  EXPECT_TRUE(R.Races.empty());
  EXPECT_GE(R.SharedCells, 1u);
  EXPECT_GE(R.ProtectedCells, 1u);
}

TEST(StaticRace, AtomicBlockCountsAsProtection) {
  Program P = workload::atomicCounter(2, 2);
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Certified) << R.toString();
}

TEST(StaticRace, ClightGammaLockClientIsCertified) {
  // The Fig. 10(c) client (E3's gamma_lock configuration), in Clight.
  Program P = workload::clightLockedCounter(2);
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Certified) << R.toString();
  EXPECT_GE(R.AccessSites, 2u);
}

// --- unprotected patterns ------------------------------------------------

TEST(StaticRace, RacyCounterIsFlagged) {
  Program P = workload::racyCounter(2);
  StaticDrfReport R = staticRaceAnalysis(P);
  ASSERT_EQ(R.Verdict, StaticVerdict::Racy) << R.toString();
  ASSERT_FALSE(R.Races.empty());
  // The top-ranked diagnostic is the unprotected write/write on x.
  EXPECT_EQ(R.Races.front().Global, "x");
  EXPECT_EQ(R.Races.front().Rank, 3);
}

TEST(StaticRace, OneSidedLockingIsFlagged) {
  Program P = cimpProgram(R"(
    global x = 0;
    locked()   { lock(); tmp := [x]; [x] := tmp + 1; unlock(); }
    unlocked() { [x] := 7; }
  )",
                          {"locked", "unlocked"}, /*WithLock=*/true);
  StaticDrfReport R = staticRaceAnalysis(P);
  ASSERT_EQ(R.Verdict, StaticVerdict::Racy) << R.toString();
  EXPECT_EQ(R.Races.front().Global, "x");
}

TEST(StaticRace, AccessAfterUnlockIsFlagged) {
  Program P = cimpProgram(R"(
    global x = 0;
    inc() { lock(); [x] := 1; unlock(); [x] := 2; }
  )",
                          {"inc", "inc"}, /*WithLock=*/true);
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Racy) << R.toString();
}

TEST(StaticRace, CallResultStoredToGlobalIsAWrite) {
  // `g = f()` stores the return value to g with a write footprint in the
  // dynamic semantics (StoreRet); the static analysis must see the write
  // or two such threads would be falsely certified DRF.
  Program P;
  clight::addClightModule(P, "client", R"(
    int g = 0;
    int get() { return 1; }
    void t() { g = get(); }
  )");
  P.addThread("t");
  P.addThread("t");
  P.link();
  StaticDrfReport R = staticRaceAnalysis(P);
  ASSERT_EQ(R.Verdict, StaticVerdict::Racy) << R.toString();
  ASSERT_FALSE(R.Races.empty());
  EXPECT_EQ(R.Races.front().Global, "g");
  EXPECT_TRUE(R.Races.front().A.Write);
  EXPECT_TRUE(R.Races.front().B.Write);
  // The dynamic Race rule agrees.
  Explorer<World> E;
  E.build(World::load(P));
  EXPECT_TRUE(E.findRace().has_value());
}

TEST(StaticRace, LockProtectedCallResultStoreIsCertified) {
  // The converse: the StoreRet write happens after the call returns, so
  // a result store inside the critical section is protected.
  Program P;
  clight::addClightModule(P, "client", R"(
    extern void lock();
    extern void unlock();
    int g = 0;
    int get() { return 1; }
    void t() { lock(); g = get(); unlock(); }
  )");
  sync::addGammaLock(P);
  P.addThread("t");
  P.addThread("t");
  P.link();
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Certified) << R.toString();
}

TEST(StaticRace, ConditionalLockingIsConservativelyFlagged) {
  // The must-held lockset at the access is the intersection over both
  // branches, i.e. empty — Eraser's discipline rejects this shape.
  Program Q;
  cimp::addCImpModule(Q, "client", R"(
    global x = 0;
    inc() { c := 1; if (c) { lock(); } [x] := 1; if (c) { unlock(); } }
  )");
  sync::addGammaLock(Q);
  Q.addThread("inc");
  Q.addThread("inc");
  Q.link();
  StaticDrfReport R = staticRaceAnalysis(Q);
  EXPECT_EQ(R.Verdict, StaticVerdict::Racy) << R.toString();
}

// --- benign / confined patterns ------------------------------------------

TEST(StaticRace, ThreadConfinedCellsAreFiltered) {
  // Each entry touches its own global: no sharing, no race.
  Program P = cimpProgram(R"(
    global a = 0;
    global b = 0;
    t1() { [a] := 1; tmp := [a]; print(tmp); }
    t2() { [b] := 2; }
  )",
                          {"t1", "t2"});
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Certified) << R.toString();
  EXPECT_EQ(R.SharedCells, 0u);
}

TEST(StaticRace, ReadOnlySharingIsCertified) {
  Program P = cimpProgram(R"(
    global c = 9;
    reader() { tmp := [c]; print(tmp); }
  )",
                          {"reader", "reader"});
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Certified) << R.toString();
  EXPECT_EQ(R.SharedCells, 1u);
}

TEST(StaticRace, SingleThreadWritesAreCertified) {
  Program P = cimpProgram("global x = 0; inc() { [x] := 1; [x] := 2; }",
                          {"inc"});
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Certified) << R.toString();
}

// --- the pi_lock client (E3) and other inapplicable programs -------------

TEST(StaticRace, PiLockAsmClientIsInapplicable) {
  // Hand-written assembly cannot be traversed: no claim, no certificate —
  // callers fall back to the dynamic detector.
  Program P = workload::asmCounterWithPiLock(x86::MemModel::TSO, 2);
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Inapplicable) << R.toString();
  EXPECT_FALSE(R.Notes.empty());
}

TEST(StaticRace, SpawnedThreadsAreAnalyzedAsRoots) {
  Program P = cimpProgram(R"(
    global x = 0;
    worker() { [x] := 1; }
    main() { spawn worker(); [x] := 2; }
  )",
                          {"main"});
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Racy) << R.toString();
}

TEST(StaticRace, LateSpawnOfAlreadyWalkedRootIsDetected) {
  // t1 is walked first as a single instance; t2 then spawns another t1.
  // Instance counts must be resolved after all walks — a walk-time
  // snapshot would leave t1's write looking thread-confined.
  Program P = cimpProgram(R"(
    global x = 0;
    t1() { [x] := 1; }
    t2() { spawn t1(); }
  )",
                          {"t1", "t2"});
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Racy) << R.toString();
}

TEST(StaticRace, SelfSpawnReplicatesRoot) {
  // The spawn comes after the access, so the root's own instance count
  // grows only once its sites are already recorded.
  Program P = cimpProgram(R"(
    global x = 0;
    main() { [x] := 1; spawn main(); }
  )",
                          {"main"});
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_EQ(R.Verdict, StaticVerdict::Racy) << R.toString();
}

// --- pointer resolution ---------------------------------------------------

TEST(StaticRace, DeepCopyChainResolvesToFixpoint) {
  // A backward copy chain needs one propagation round per link: with a
  // fixed round count the analysis would miss that d can point to x and
  // falsely certify the write/write race with `other`.
  Program P;
  clight::addClightModule(P, "client", R"(
    int x = 0;
    int y = 0;
    void writer() {
      int *a;
      int *b;
      int *c;
      int *d;
      int i;
      a = &x;
      b = &y;
      c = &y;
      d = &y;
      i = 0;
      while (i < 3) {
        d = c;
        c = b;
        b = a;
        i = i + 1;
      }
      *d = 1;
    }
    void other() { x = 5; }
  )");
  P.addThread("writer");
  P.addThread("other");
  P.link();
  StaticDrfReport R = staticRaceAnalysis(P);
  ASSERT_EQ(R.Verdict, StaticVerdict::Racy) << R.toString();
  bool OnX = false;
  for (const PotentialRace &PR : R.Races)
    OnX = OnX || PR.Global == "x";
  EXPECT_TRUE(OnX) << R.toString();
}

TEST(StaticRace, DerefThroughIntGlobalIsNotCertified) {
  // g holds &x at runtime; the points-to model cannot resolve a deref of
  // an int-valued global, and must degrade to "any cell" rather than
  // recording no access (which would certify this racy program).
  Program P;
  clight::addClightModule(P, "client", R"(
    int x = 0;
    int g = 0;
    void t1() {
      g = &x;
      *g = 1;
    }
    void t2() { x = 2; }
  )");
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_NE(R.Verdict, StaticVerdict::Certified) << R.toString();
}

TEST(StaticRace, X86LockImplementationDeclinesTheCertificate) {
  // A Clight client synchronizing through entries that resolve into an
  // x86 object module (pi_lock): the lock token still models the
  // client's mutual exclusion — no race is flagged — but the assembly
  // body is outside the lockset walk, so no certificate may silently
  // vouch for it. The external call must be handled conservatively.
  Program P;
  clight::addClightModule(P, "client", workload::fig10cClientSource());
  sync::addPiLock(P, x86::MemModel::TSO);
  P.addThread("inc");
  P.addThread("inc");
  P.link();
  StaticDrfReport R = staticRaceAnalysis(P);
  EXPECT_NE(R.Verdict, StaticVerdict::Certified) << R.toString();
  EXPECT_NE(R.Verdict, StaticVerdict::Racy) << R.toString();
  bool Noted = false;
  for (const std::string &N : R.Notes)
    Noted = Noted || N.find("x86 assembly") != std::string::npos;
  EXPECT_TRUE(Noted) << R.toString();

  // And the combined detector therefore does NOT take the lockset fast
  // path on such a program.
  DetectResult D = detectRaces(P);
  EXPECT_FALSE(D.FastPath);
}

// --- diagnostic ranking ---------------------------------------------------

TEST(StaticRace, OneSideLockedWriteWriteRanksTwo) {
  Program P = cimpProgram(R"(
    global x = 0;
    locked()   { lock(); [x] := 1; unlock(); }
    unlocked() { [x] := 7; }
  )",
                          {"locked", "unlocked"}, /*WithLock=*/true);
  StaticDrfReport R = staticRaceAnalysis(P);
  ASSERT_EQ(R.Verdict, StaticVerdict::Racy) << R.toString();
  ASSERT_FALSE(R.Races.empty());
  // Protected-on-one-side write/write: rank 2 (above a pure lockset
  // mismatch, below a fully unprotected write/write).
  EXPECT_EQ(R.Races.front().Rank, 2) << R.toString();
}

// --- the combined detector (fast path) -----------------------------------

TEST(RaceDetector, FastPathSkipsExplorationWhenCertified) {
  Program P = workload::lockedCounter(2, 1, 0);
  DetectResult D = detectRaces(P);
  EXPECT_TRUE(D.Static.certified());
  EXPECT_TRUE(D.FastPath);
  EXPECT_TRUE(D.Drf);
  EXPECT_EQ(D.ExploredStates, 0u);
}

TEST(RaceDetector, FastPathSampleConfirmAgreesWithCertificate) {
  Program P = workload::lockedCounter(2, 1, 0);
  DetectOptions O;
  O.SampleConfirm = true;
  DetectResult D = detectRaces(P, O);
  EXPECT_TRUE(D.FastPath);
  EXPECT_TRUE(D.Drf);
  EXPECT_FALSE(D.Witness.has_value());
  EXPECT_GT(D.ExploredStates, 0u);
}

TEST(RaceDetector, FallsBackToDynamicOnRacyPrograms) {
  Program P = workload::racyCounter(2);
  DetectResult D = detectRaces(P);
  EXPECT_FALSE(D.FastPath);
  EXPECT_FALSE(D.Drf);
  EXPECT_TRUE(D.Witness.has_value());
}

TEST(RaceDetector, FallsBackToDynamicOnInapplicablePrograms) {
  Program P = workload::sbLitmus(x86::MemModel::SC, false);
  DetectResult D = detectRaces(P);
  EXPECT_FALSE(D.FastPath);
  EXPECT_EQ(D.Static.Verdict, StaticVerdict::Inapplicable);
  // SB is the canonical racy litmus: the dynamic rule finds the witness.
  EXPECT_FALSE(D.Drf);
  EXPECT_TRUE(D.Witness.has_value());
}

// --- soundness cross-check over every workload family --------------------

struct Family {
  const char *Name;
  Program P;
};

std::vector<Family> workloadFamilies() {
  std::vector<Family> Out;
  Out.push_back({"lockedCounter", workload::lockedCounter(2, 1, 0)});
  Out.push_back({"lockedCounterWide", workload::lockedCounter(3, 1, 0)});
  Out.push_back({"racyCounter", workload::racyCounter(2)});
  Out.push_back({"atomicCounter", workload::atomicCounter(2, 2)});
  Out.push_back({"clightLockedCounter", workload::clightLockedCounter(2)});
  Out.push_back(
      {"asmPiLock", workload::asmCounterWithPiLock(x86::MemModel::TSO, 2)});
  Out.push_back({"sbLitmus", workload::sbLitmus(x86::MemModel::SC, false)});
  Out.push_back(
      {"sbLitmusFenced", workload::sbLitmus(x86::MemModel::SC, true)});
  Out.push_back({"mpLitmus", workload::mpLitmus(x86::MemModel::SC)});
  return Out;
}

TEST(StaticRaceCrossCheck, SoundAgainstDynamicDetectorOnAllFamilies) {
  for (Family &F : workloadFamilies()) {
    SCOPED_TRACE(F.Name);
    StaticDrfReport S = staticRaceAnalysis(F.P);

    Explorer<World> E;
    E.build(World::load(F.P));
    std::optional<RaceWitness> Dyn = E.findRace();

    // Zero false negatives: a static certificate means the dynamic Race
    // rule must not fire.
    if (S.certified()) {
      EXPECT_FALSE(Dyn.has_value())
          << "static certificate on a dynamically racy program!\n"
          << S.toString();
    }

    // Completeness on racy controls: a dynamic witness must be flagged
    // statically (Racy) or conservatively declined (Inapplicable) —
    // never certified.
    if (Dyn.has_value()) {
      EXPECT_NE(S.Verdict, StaticVerdict::Certified) << S.toString();
    }
  }
}

TEST(StaticRaceCrossCheck, RacyControlsAreAllFlaggedStatically) {
  // Controls written in the analyzable client languages must be flagged
  // outright, not merely declined.
  std::vector<std::pair<const char *, Program>> Controls;
  Controls.emplace_back("racyCounter", workload::racyCounter(2));
  Controls.emplace_back("racyCounter3", workload::racyCounter(3));
  for (auto &NameAndP : Controls) {
    SCOPED_TRACE(NameAndP.first);
    StaticDrfReport S = staticRaceAnalysis(NameAndP.second);
    EXPECT_EQ(S.Verdict, StaticVerdict::Racy) << S.toString();
    EXPECT_FALSE(S.Races.empty());
  }
}

} // namespace
