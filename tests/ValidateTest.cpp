//===- tests/ValidateTest.cpp - Validation-engine tests --------------------===//
//
// Exercises the executable checkers for the paper's side conditions:
// wd(tl) (Def. 1), det(tl), ReachClose (Def. 4), the footprint-preserving
// simulation (Defs. 2-3), and per-pass validation (Def. 10).
//
//===----------------------------------------------------------------------===//

#include "cimp/CImpLang.h"
#include "clight/ClightLang.h"
#include "compiler/Compiler.h"
#include "validate/PassValidator.h"
#include "validate/Sim.h"
#include "validate/Wd.h"
#include "x86/X86Lang.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::validate;

namespace {

const char *LockClientSrc = R"(
  extern void lock();
  extern void unlock();
  int x = 0;
  void inc() {
    int32_t tmp;
    lock();
    tmp = x;
    x = x + 1;
    unlock();
    print(tmp);
  }
)";

Program clightOnly(const std::string &Src) {
  Program P;
  clight::addClightModule(P, "m", Src);
  P.link();
  return P;
}

} // namespace

TEST(WdCheck, ClightIsWellDefined) {
  Program P = clightOnly(R"(
    int g = 4;
    void main() {
      int a = 1;
      int i = 0;
      while (i < 3) { a = a * 2; i = i + 1; g = g + a; }
      print(a + g);
    }
  )");
  CheckReport R = wdCheck(P, 0, "main", {});
  EXPECT_TRUE(R.Ok) << (R.Violations.empty() ? "" : R.Violations[0]);
  EXPECT_GT(R.StepsChecked, 5u);
}

TEST(WdCheck, CImpIsWellDefined) {
  Program P;
  cimp::addCImpModule(P, "m", R"(
    global g = 0;
    main() { v := 0; < v := [g]; [g] := v + 1; > print(v); }
  )");
  P.link();
  CheckReport R = wdCheck(P, 0, "main", {});
  EXPECT_TRUE(R.Ok) << (R.Violations.empty() ? "" : R.Violations[0]);
}

TEST(WdCheck, X86IsWellDefined) {
  Program P;
  x86::addAsmModule(P, "m", R"(
    .data g 3
    .entry main 2 0
    main:
            movl g, %eax
            movl %eax, 0(%esp)
            addl $1, %eax
            movl %eax, g
            movl 0(%esp), %ebx
            printl %ebx
            retl
  )",
                    x86::MemModel::SC);
  P.link();
  CheckReport R = wdCheck(P, 0, "main", {});
  EXPECT_TRUE(R.Ok) << (R.Violations.empty() ? "" : R.Violations[0]);
}

TEST(DetCheck, SequentialLanguagesAreDeterministic) {
  Program P = clightOnly(R"(
    void main() { int a = 1; print(a); }
  )");
  EXPECT_TRUE(detCheck(P, 0, "main", {}).Ok);

  Program P2;
  x86::addAsmModule(P2, "m", R"(
    .entry f 0 0
    f:
            movl $1, %eax
            printl %eax
            retl
  )",
                    x86::MemModel::SC);
  P2.link();
  EXPECT_TRUE(detCheck(P2, 0, "f", {}).Ok);
}

TEST(DetCheck, TsoMachineIsNotDeterministic) {
  // A pending store buffer makes both "flush" and "execute" available.
  Program P;
  x86::addAsmModule(P, "m", R"(
    .data g 0
    .entry f 0 0
    f:
            movl $1, g
            movl $2, g
            movl g, %eax
            retl
  )",
                    x86::MemModel::TSO);
  P.link();
  EXPECT_FALSE(detCheck(P, 0, "f", {}).Ok);
}

// Tri-state regression (PR 10 satellite): before the fix, exploreLocal
// silently stopped at MaxStates and a violation past the bound went
// unseen — the checkers returned Ok=true from a truncated prefix. A
// truncated run must never read as a pass.
TEST(WdCheck, TruncatedRunIsNeverAPass) {
  Program P = clightOnly(R"(
    int g = 0;
    void main() { int i = 0; while (i < 100) { g = g + i; i = i + 1; } }
  )");
  CheckOptions Opts;
  Opts.MaxStates = 3; // far below the loop's reachable local states
  for (int Which = 0; Which < 3; ++Which) {
    const CheckReport R = Which == 0   ? wdCheck(P, 0, "main", {}, Opts)
                          : Which == 1 ? detCheck(P, 0, "main", {}, Opts)
                                       : reachCloseCheck(P, 0, "main", {},
                                                         Opts);
    EXPECT_TRUE(R.Truncated) << Which;
    EXPECT_FALSE(R.Ok) << Which;
    ASSERT_FALSE(R.Violations.empty()) << Which;
    EXPECT_NE(R.Violations.back().find("state bound exceeded"),
              std::string::npos)
        << Which << ": " << R.Violations.back();
  }
}

TEST(WdCheck, ExhaustiveRunIsNotTruncated) {
  Program P = clightOnly(R"(
    void main() { int a = 1; print(a); }
  )");
  const CheckReport R = wdCheck(P, 0, "main", {});
  EXPECT_FALSE(R.Truncated);
  EXPECT_TRUE(R.Ok);
}

TEST(ReachClose, ClightClientIsReachClosed) {
  Program P = clightOnly(R"(
    int g = 0;
    void main() { int i = 0; while (i < 4) { g = g + i; i = i + 1; } }
  )");
  CheckReport R = reachCloseCheck(P, 0, "main", {});
  EXPECT_TRUE(R.Ok) << (R.Violations.empty() ? "" : R.Violations[0]);
}

TEST(SimCheck, IdTransSimulatesCImpObject) {
  // IdTrans for the CImp object module (Sec. 7.2): the identity
  // translation trivially satisfies Correct (Def. 10).
  const char *ObjSrc = R"(
    global L = 1;
    acquire() {
      r := 0;
      while (r == 0) { < r := [L]; [L] := 0; > }
      return 0;
    }
  )";
  Program A, B;
  cimp::addCImpModule(A, "obj", ObjSrc, /*ObjectMode=*/true);
  cimp::addCImpModule(B, "obj", ObjSrc, /*ObjectMode=*/true);
  A.link();
  B.link();
  SimReport Rep = simCheck(A, 0, B, 0, "acquire", {});
  EXPECT_TRUE(Rep.Holds) << Rep.FailReason;
}

TEST(SimCheck, PassSimulationHoldsOnArithmetic) {
  auto R = compiler::compileClightSource(R"(
    void main() {
      int a = 6;
      int b = a * 4 + 2;
      print(b - a);
    }
  )");
  Program Src, Tgt;
  unsigned SM = compiler::addStage(Src, R, 0, "m");
  unsigned TM = compiler::addStage(Tgt, R, 12, "m");
  Src.link();
  Tgt.link();
  SimReport Rep = simCheck(Src, SM, Tgt, TM, "main", {});
  EXPECT_TRUE(Rep.Holds) << Rep.FailReason;
  EXPECT_GT(Rep.Obligations, 3u);
}

TEST(SimCheck, RefutesAWrongTransformation) {
  // "Compile" print(1) to print(2): the simulation must refute it.
  Program Src, Tgt;
  clight::addClightModule(Src, "m", "void main() { print(1); }");
  clight::addClightModule(Tgt, "m", "void main() { print(2); }");
  Src.link();
  Tgt.link();
  SimReport Rep = simCheck(Src, 0, Tgt, 0, "main", {});
  EXPECT_FALSE(Rep.Holds);
  EXPECT_NE(Rep.FailReason.find("mismatch"), std::string::npos);
}

TEST(SimCheck, RefutesAFootprintViolation) {
  // The "target" writes a shared global the source never touches before
  // the observable event: FPmatch/LG must catch it even though traces at
  // this entry would only differ in memory, not events.
  Program Src, Tgt;
  clight::addClightModule(Src, "m", R"(
    int g = 0;
    void main() { int a = 1; print(a); }
  )");
  clight::addClightModule(Tgt, "m", R"(
    int g = 0;
    void main() { g = 7; print(1); }
  )");
  Src.link();
  Tgt.link();
  SimReport Rep = simCheck(Src, 0, Tgt, 0, "main", {});
  EXPECT_FALSE(Rep.Holds) << "footprint violation not detected";
}

TEST(SimCheck, LockClientSimulatedThroughFullPipeline) {
  auto R = compiler::compileClightSource(LockClientSrc);
  Program Src, Tgt;
  unsigned SM = compiler::addStage(Src, R, 0, "m");
  unsigned TM = compiler::addStage(Tgt, R, 12, "m");
  Src.link();
  Tgt.link();
  SimReport Rep = simCheck(Src, SM, Tgt, TM, "inc", {});
  EXPECT_TRUE(Rep.Holds) << Rep.FailReason;
}

TEST(PassValidator, AllPassesValidateOnLockClient) {
  auto R = compiler::compileClightSource(LockClientSrc);
  auto Results = validatePipeline(R, defaultSamples(*R.Clight));
  ASSERT_EQ(Results.size(), compiler::passNames().size());
  for (const PassResult &PR : Results) {
    EXPECT_TRUE(PR.Holds) << PR.PassName << ": " << PR.FailReason;
    EXPECT_GT(PR.Obligations, 0u) << PR.PassName;
  }
}

TEST(PassValidator, AllPassesValidateOnCallHeavyCode) {
  auto R = compiler::compileClightSource(R"(
    int twice(int x) { return x * 2; }
    int apply(int a, int b) {
      int r;
      r = twice(a);
      return r + b;
    }
    void main() {
      int v;
      v = apply(3, 4);
      print(v);
    }
  )");
  auto Results = validatePipeline(R, defaultSamples(*R.Clight));
  for (const PassResult &PR : Results)
    EXPECT_TRUE(PR.Holds) << PR.PassName << ": " << PR.FailReason;
}
