//===- ir/LinearLang.cpp - Linear and Mach interpreters --------------------===//

#include "ir/IRLangs.h"

#include "support/StrUtil.h"

#include <array>
#include <cassert>
#include <map>

using namespace ccc;
using namespace ccc::ir;
using namespace ccc::linear;

namespace {

/// Builds the label-id -> instruction-index map of a code list.
std::map<unsigned, unsigned> labelMap(const std::vector<Instr> &Code) {
  std::map<unsigned, unsigned> Out;
  for (unsigned I = 0; I < Code.size(); ++I)
    if (Code[I].K == Instr::Kind::Label)
      Out[Code[I].Label] = I;
  return Out;
}

// ---------------------------------------------------------------------------
// Linear: registers + abstract slots in the core.
// ---------------------------------------------------------------------------

class LinCore : public Core {
public:
  const linear::Function *F = nullptr;
  unsigned PC = 0;
  std::array<Value, x86::NumRegs> Regs;
  std::vector<Value> Slots;
  bool Await = false;
  bool AwaitHasDst = false;
  Loc AwaitDst;

  std::string key() const override {
    StrBuilder B;
    B << 'f' << reinterpret_cast<uintptr_t>(F) << '@' << PC;
    if (Await)
      B << 'w';
    B << '|';
    for (const Value &V : Regs)
      B << V.toString() << ',';
    B << '/';
    for (const Value &V : Slots)
      B << V.toString() << ',';
    return B.take();
  }
};

// ---------------------------------------------------------------------------
// Mach: registers + a concrete frame in free-list memory.
// ---------------------------------------------------------------------------

class MachCore : public Core {
public:
  const mach::Function *F = nullptr;
  unsigned PC = 0;
  std::array<Value, x86::NumRegs> Regs;
  bool FrameAllocated = false;
  std::vector<Value> EntryArgs;
  bool Await = false;
  bool AwaitHasDst = false;
  Loc AwaitDst;

  std::string key() const override {
    StrBuilder B;
    B << 'f' << reinterpret_cast<uintptr_t>(F) << '@' << PC
      << (FrameAllocated ? 'A' : 'U');
    if (Await)
      B << 'w';
    B << '|';
    for (const Value &V : Regs)
      B << V.toString() << ',';
    if (!FrameAllocated)
      for (const Value &V : EntryArgs)
        B << V.toString() << ';';
    return B.take();
  }
};

/// Executes one linear-form instruction given location read/write hooks.
/// \p ReadLoc and \p WriteLoc report footprints for memory-backed slots.
template <typename CoreT, typename ReadFn, typename WriteFn>
std::vector<LocalStep> stepLinearForm(
    const char *LangName, const CoreT &Cr, const std::vector<Instr> &Code,
    const std::map<unsigned, unsigned> &Labels, const GlobalEnv &GE,
    const Mem &M, ReadFn ReadLoc, WriteFn WriteLoc) {
  std::vector<LocalStep> Out;
  auto abort = [&Out, LangName](const std::string &R) {
    Out.push_back(LocalStep::abort(std::string(LangName) + ": " + R));
  };
  if (Cr.Await) {
    abort("stepped while awaiting return");
    return Out;
  }

  // Falling off the end of the code is an implicit void return.
  if (Cr.PC >= Code.size()) {
    LocalStep S;
    S.M = Msg::ret(Value::makeInt(0));
    S.NextMem = M;
    S.Next = std::make_shared<CoreT>(Cr);
    Out.push_back(std::move(S));
    return Out;
  }
  const Instr &I = Code[Cr.PC];

  Footprint FP;
  Mem NM = M;
  auto finish = [&](Msg Ms, std::shared_ptr<CoreT> N) {
    LocalStep S;
    S.M = std::move(Ms);
    S.FP = FP;
    S.NextMem = std::move(NM);
    S.Next = std::move(N);
    Out.push_back(std::move(S));
  };
  auto nextCore = [&](unsigned NewPC) {
    auto N = std::make_shared<CoreT>(Cr);
    N->PC = NewPC;
    return N;
  };
  auto branchTo = [&](unsigned Label) -> std::optional<unsigned> {
    auto It = Labels.find(Label);
    if (It == Labels.end())
      return std::nullopt;
    return It->second;
  };
  auto read = [&](const Loc &L) { return ReadLoc(L, NM, FP); };
  auto evalAddrMode = [&](const AddrMode &AM) -> std::optional<Addr> {
    if (AM.K == AddrMode::Kind::Global)
      return GE.lookup(AM.Global);
    auto V = read(AM.Base);
    if (!V || !V->isPtr())
      return std::nullopt;
    return V->asPtr();
  };

  switch (I.K) {
  case Instr::Kind::Label:
    finish(Msg::tau(), nextCore(Cr.PC + 1));
    break;
  case Instr::Kind::Goto: {
    auto T = branchTo(I.Label);
    if (!T) {
      abort("unknown label");
      break;
    }
    finish(Msg::tau(), nextCore(*T));
    break;
  }
  case Instr::Kind::Op: {
    Addr GA = 0;
    if (I.O == Oper::Addrglobal) {
      auto A = GE.lookup(I.Global);
      if (!A) {
        abort("unknown global");
        break;
      }
      GA = *A;
    }
    Value A, B;
    unsigned Arity = operArity(I.O);
    if (Arity >= 1) {
      auto V = read(I.Args[0]);
      if (!V) {
        abort("bad operand");
        break;
      }
      A = *V;
    }
    if (Arity >= 2) {
      auto V = read(I.Args[1]);
      if (!V) {
        abort("bad operand");
        break;
      }
      B = *V;
    }
    auto R = evalOper(I.O, I.C, I.Imm, GA, A, B);
    if (!R) {
      abort("operator evaluation failed");
      break;
    }
    auto N = nextCore(Cr.PC + 1);
    if (!WriteLoc(*N, I.Dst, *R, NM, FP)) {
      abort("bad destination");
      break;
    }
    finish(Msg::tau(), std::move(N));
    break;
  }
  case Instr::Kind::Load: {
    auto A = evalAddrMode(I.AM);
    if (!A) {
      abort("bad load address");
      break;
    }
    auto V = NM.load(*A);
    if (!V) {
      abort("load from unallocated address");
      break;
    }
    FP.addRead(*A);
    auto N = nextCore(Cr.PC + 1);
    if (!WriteLoc(*N, I.Dst, *V, NM, FP)) {
      abort("bad load destination");
      break;
    }
    finish(Msg::tau(), std::move(N));
    break;
  }
  case Instr::Kind::Store: {
    auto A = evalAddrMode(I.AM);
    auto V = read(I.Args[0]);
    if (!A || !V) {
      abort("bad store");
      break;
    }
    if (!NM.store(*A, *V)) {
      abort("store to unallocated address");
      break;
    }
    FP.addWrite(*A);
    finish(Msg::tau(), nextCore(Cr.PC + 1));
    break;
  }
  case Instr::Kind::Call:
  case Instr::Kind::Tailcall: {
    std::vector<Value> Args;
    bool Bad = false;
    for (const Loc &L : I.Args) {
      auto V = read(L);
      if (!V) {
        Bad = true;
        break;
      }
      Args.push_back(*V);
    }
    if (Bad) {
      abort("bad call argument");
      break;
    }
    if (I.K == Instr::Kind::Tailcall) {
      finish(Msg::tailCall(I.Callee, std::move(Args)),
             std::make_shared<CoreT>(Cr));
      break;
    }
    auto N = nextCore(Cr.PC + 1);
    N->Await = true;
    N->AwaitHasDst = I.HasDst;
    N->AwaitDst = I.Dst;
    finish(Msg::extCall(I.Callee, std::move(Args)), std::move(N));
    break;
  }
  case Instr::Kind::Cond: {
    auto A = read(I.Args[0]);
    if (!A) {
      abort("bad condition operand");
      break;
    }
    Value B = Value::makeInt(I.Imm);
    if (!I.CondOneArg) {
      auto BV = read(I.Args[1]);
      if (!BV) {
        abort("bad condition operand");
        break;
      }
      B = *BV;
    }
    auto R = evalCmp(I.C, *A, B);
    if (!R) {
      abort("condition type error");
      break;
    }
    if (*R) {
      auto T = branchTo(I.Label);
      if (!T) {
        abort("unknown label");
        break;
      }
      finish(Msg::tau(), nextCore(*T));
    } else {
      finish(Msg::tau(), nextCore(Cr.PC + 1));
    }
    break;
  }
  case Instr::Kind::Return: {
    Value V = Value::makeInt(0);
    if (I.HasArg) {
      auto A = read(I.Args[0]);
      if (!A) {
        abort("bad return value");
        break;
      }
      V = *A;
    }
    finish(Msg::ret(V), std::make_shared<CoreT>(Cr));
    break;
  }
  case Instr::Kind::Print: {
    auto V = read(I.Args[0]);
    if (!V || !V->isInt()) {
      abort("print needs an integer");
      break;
    }
    finish(Msg::event(V->asInt()), nextCore(Cr.PC + 1));
    break;
  }
  }
  return Out;
}

} // namespace

// ---------------------------------------------------------------------------
// LinearLang
// ---------------------------------------------------------------------------

namespace ccc {
namespace ir {
namespace detail {
struct LinearLangImpl {
  std::map<const linear::Function *, std::map<unsigned, unsigned>> Labels;
};
} // namespace detail
} // namespace ir
} // namespace ccc

namespace {
/// Per-module label caches (keyed by function pointer; modules are
/// immutable once registered).
std::map<unsigned, unsigned> &linearLabels(const linear::Function *F) {
  static std::map<const linear::Function *,
                  std::map<unsigned, unsigned>>
      Cache;
  auto It = Cache.find(F);
  if (It == Cache.end())
    It = Cache.emplace(F, labelMap(F->Code)).first;
  return It->second;
}

std::map<unsigned, unsigned> &machLabels(const mach::Function *F) {
  static std::map<const mach::Function *, std::map<unsigned, unsigned>>
      Cache;
  auto It = Cache.find(F);
  if (It == Cache.end())
    It = Cache.emplace(F, labelMap(F->Code)).first;
  return It->second;
}
} // namespace

LinearLang::LinearLang(std::shared_ptr<const linear::Module> M)
    : Mod(std::move(M)) {}
LinearLang::~LinearLang() = default;

CoreRef LinearLang::initCore(const std::string &Entry,
                             const std::vector<Value> &Args) const {
  const linear::Function *F = Mod->find(Entry);
  if (!F || F->NumParams != Args.size())
    return nullptr;
  auto C = std::make_shared<LinCore>();
  C->F = F;
  C->Regs.fill(Value::makeUndef());
  C->Slots.assign(F->NumSlots, Value::makeUndef());
  for (std::size_t I = 0; I < Args.size(); ++I) {
    const Loc &H = F->ParamHomes[I];
    if (H.IsReg)
      C->Regs[static_cast<unsigned>(H.R)] = Args[I];
    else if (H.Slot < C->Slots.size())
      C->Slots[H.Slot] = Args[I];
    else
      return nullptr;
  }
  return C;
}

std::vector<LocalStep> LinearLang::step(const FreeList &F, const Core &C,
                                        const Mem &M) const {
  (void)F;
  const auto &Cr = static_cast<const LinCore &>(C);
  auto ReadLoc = [&Cr](const Loc &L, const Mem &,
                       Footprint &) -> std::optional<Value> {
    if (L.IsReg)
      return Cr.Regs[static_cast<unsigned>(L.R)];
    if (L.Slot >= Cr.Slots.size())
      return std::nullopt;
    return Cr.Slots[L.Slot];
  };
  auto WriteLoc = [](LinCore &N, const Loc &L, const Value &V, Mem &,
                     Footprint &) {
    if (L.IsReg) {
      N.Regs[static_cast<unsigned>(L.R)] = V;
      return true;
    }
    if (L.Slot >= N.Slots.size())
      return false;
    N.Slots[L.Slot] = V;
    return true;
  };
  return stepLinearForm("Linear", Cr, Cr.F->Code, linearLabels(Cr.F),
                        *Globals, M, ReadLoc, WriteLoc);
}

CoreRef LinearLang::applyReturn(const Core &C, const Value &V) const {
  const auto &Cr = static_cast<const LinCore &>(C);
  if (!Cr.Await)
    return nullptr;
  auto N = std::make_shared<LinCore>(Cr);
  N->Await = false;
  if (Cr.AwaitHasDst) {
    if (Cr.AwaitDst.IsReg)
      N->Regs[static_cast<unsigned>(Cr.AwaitDst.R)] = V;
    else if (Cr.AwaitDst.Slot < N->Slots.size())
      N->Slots[Cr.AwaitDst.Slot] = V;
    else
      return nullptr;
  }
  return N;
}

// ---------------------------------------------------------------------------
// MachLang
// ---------------------------------------------------------------------------

MachLang::MachLang(std::shared_ptr<const mach::Module> M)
    : Mod(std::move(M)) {}
MachLang::~MachLang() = default;

CoreRef MachLang::initCore(const std::string &Entry,
                           const std::vector<Value> &Args) const {
  const mach::Function *F = Mod->find(Entry);
  if (!F || F->NumParams != Args.size())
    return nullptr;
  auto C = std::make_shared<MachCore>();
  C->F = F;
  C->Regs.fill(Value::makeUndef());
  C->FrameAllocated = F->FrameSize == 0;
  C->EntryArgs = Args;
  if (C->FrameAllocated) {
    // No frame: args go straight to their homes (registers only).
    for (std::size_t I = 0; I < Args.size(); ++I) {
      const Loc &H = F->ParamHomes[I];
      if (!H.IsReg)
        return nullptr;
      C->Regs[static_cast<unsigned>(H.R)] = Args[I];
    }
    C->EntryArgs.clear();
  }
  return C;
}

std::vector<LocalStep> MachLang::step(const FreeList &FL, const Core &C,
                                      const Mem &M) const {
  const auto &Cr = static_cast<const MachCore &>(C);
  const mach::Function &F = *Cr.F;
  std::vector<LocalStep> Out;

  // Frame allocation first; parameter values land in their homes.
  if (!Cr.FrameAllocated) {
    if (F.FrameSize > FL.size()) {
      Out.push_back(LocalStep::abort("Mach: frame exceeds free list"));
      return Out;
    }
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    for (unsigned I = 0; I < F.FrameSize; ++I) {
      Addr A = FL.at(I);
      S.NextMem.allocFrame(A, Value::makeUndef());
      S.FP.addWrite(A);
    }
    auto N = std::make_shared<MachCore>(Cr);
    N->FrameAllocated = true;
    for (std::size_t I = 0; I < Cr.EntryArgs.size(); ++I) {
      const Loc &H = F.ParamHomes[I];
      if (H.IsReg) {
        N->Regs[static_cast<unsigned>(H.R)] = Cr.EntryArgs[I];
      } else {
        Addr A = FL.at(H.Slot);
        S.NextMem.store(A, Cr.EntryArgs[I]);
        S.FP.addWrite(A);
      }
    }
    N->EntryArgs.clear();
    S.Next = std::move(N);
    Out.push_back(std::move(S));
    return Out;
  }

  auto ReadLoc = [&Cr, &FL](const Loc &L, const Mem &CurM,
                            Footprint &FP) -> std::optional<Value> {
    if (L.IsReg)
      return Cr.Regs[static_cast<unsigned>(L.R)];
    Addr A = FL.at(L.Slot);
    auto V = CurM.load(A);
    if (!V)
      return std::nullopt;
    FP.addRead(A);
    return V;
  };
  auto WriteLoc = [&FL](MachCore &N, const Loc &L, const Value &V, Mem &NM,
                        Footprint &FP) {
    if (L.IsReg) {
      N.Regs[static_cast<unsigned>(L.R)] = V;
      return true;
    }
    Addr A = FL.at(L.Slot);
    if (!NM.store(A, V))
      return false;
    FP.addWrite(A);
    return true;
  };
  return stepLinearForm("Mach", Cr, F.Code, machLabels(&F), *Globals, M,
                        ReadLoc, WriteLoc);
}

CoreRef MachLang::applyReturn(const Core &C, const Value &V) const {
  const auto &Cr = static_cast<const MachCore &>(C);
  if (!Cr.Await)
    return nullptr;
  // Call results always land in a register under our convention.
  if (Cr.AwaitHasDst && !Cr.AwaitDst.IsReg)
    return nullptr;
  auto N = std::make_shared<MachCore>(Cr);
  N->Await = false;
  if (Cr.AwaitHasDst)
    N->Regs[static_cast<unsigned>(Cr.AwaitDst.R)] = V;
  return N;
}

unsigned ccc::ir::addLinearModule(Program &P, const std::string &Name,
                                  std::shared_ptr<const linear::Module> M) {
  GlobalEnv GE;
  for (const auto &G : M->Globals)
    GE.declare(G.first, Value::makeInt(G.second), DataOwner::Client);
  return P.addModule(Name, std::make_unique<LinearLang>(M), std::move(GE));
}

unsigned ccc::ir::addMachModule(Program &P, const std::string &Name,
                                std::shared_ptr<const mach::Module> M) {
  GlobalEnv GE;
  for (const auto &G : M->Globals)
    GE.declare(G.first, Value::makeInt(G.second), DataOwner::Client);
  return P.addModule(Name, std::make_unique<MachLang>(M), std::move(GE));
}
