//===- analysis/FenceSynth.cpp - Static minimal-fence synthesis ------------===//
//
// The cut-and-certify loop. The graph half of the pass (candidate
// regions, exact/greedy cut search) is an over-approximation used only to
// *propose* fence sets; every accepted set is validated by re-running the
// TsoRobust certifier on the rewritten module, and minimality is enforced
// by certifier-backed pruning, never by trusting the graph. See the
// header comment for the construction and its soundness argument.
//
//===----------------------------------------------------------------------===//

#include "analysis/FenceSynth.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <map>
#include <set>

using namespace ccc;
using namespace ccc::analysis;
using namespace ccc::x86;

const char *ccc::analysis::repairOutcomeName(RepairOutcome O) {
  switch (O) {
  case RepairOutcome::AlreadyRobust:
    return "AlreadyRobust";
  case RepairOutcome::Repaired:
    return "Repaired";
  case RepairOutcome::NotRepairable:
    return "NotRepairable";
  }
  return "?";
}

unsigned ccc::analysis::mfenceCount(const Module &M) {
  unsigned N = 0;
  for (const Instr &I : M.Code)
    if (I.K == Instr::Kind::Mfence)
      ++N;
  return N;
}

namespace {

/// The fence-free store-to-violation path graph plus the witness pairs
/// the cut must cover.
struct CutProblem {
  /// Fence-free out-edges per PC: successors, except drains end paths,
  /// module-boundary instructions end paths, and summarized same-module
  /// calls route through the callee (entry edge + context-insensitive
  /// return edges).
  std::vector<std::vector<unsigned>> Adj;
  /// Distinct (store PC, violation PC) pairs from the pre-repair report.
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  /// Violation PCs grouped per distinct witnessed store PC.
  std::map<unsigned, std::vector<unsigned>> ByStore;
};

bool isSummarizedCall(const Module &M, const RobustContext *Ctx,
                      const Instr &I) {
  return I.K == Instr::Kind::Call && Ctx && Ctx->Closed &&
         M.Entries.count(I.Name) != 0 &&
         Ctx->SelfResolvedEntries.count(I.Name) != 0;
}

/// Builds the fence-free flow graph. Return edges of summarized callees
/// are grown to a fixpoint: each round recomputes which ret PCs are
/// fence-free-reachable from each summarized callee's entry (possibly
/// through return edges added in earlier rounds for nested calls) and
/// wires them to every such call's return point.
std::vector<std::vector<unsigned>> buildFenceFreeGraph(
    const Module &M, const RobustContext *Ctx) {
  const unsigned N = static_cast<unsigned>(M.Code.size());
  std::vector<std::vector<unsigned>> Adj(N);
  std::vector<std::pair<unsigned, unsigned>> SummCalls; // (callPC, calleePC)

  for (unsigned PC = 0; PC < N; ++PC) {
    const Instr &I = M.Code[PC];
    if (drainsStoreBuffer(I))
      continue; // pending facts die here: no fence-free continuation
    if (isSummarizedCall(M, Ctx, I)) {
      unsigned CalleePC = M.Entries.at(I.Name).PCIndex;
      if (CalleePC < N)
        Adj[PC].push_back(CalleePC);
      SummCalls.emplace_back(PC, CalleePC);
      continue; // flow back to PC+1 only via the callee's return edges
    }
    if (crossesModuleBoundary(I))
      continue; // escape point: the path (and the obligation) ends here
    for (unsigned S : successors(M, PC))
      Adj[PC].push_back(S);
  }

  std::set<std::pair<unsigned, unsigned>> ReturnEdges;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &C : SummCalls) {
      if (C.first + 1 >= N)
        continue;
      // Ret PCs fence-free-reachable from the callee entry.
      std::vector<bool> Seen(N, false);
      std::vector<unsigned> Work;
      if (C.second < N) {
        Seen[C.second] = true;
        Work.push_back(C.second);
      }
      while (!Work.empty()) {
        unsigned PC = Work.back();
        Work.pop_back();
        if (M.Code[PC].K == Instr::Kind::Ret &&
            ReturnEdges.insert({PC, C.first + 1}).second) {
          Adj[PC].push_back(C.first + 1);
          Changed = true;
        }
        for (unsigned S : Adj[PC])
          if (S < N && !Seen[S]) {
            Seen[S] = true;
            Work.push_back(S);
          }
      }
    }
  }
  return Adj;
}

/// True when the fence set \p Blocked cuts every pair of \p P: for each
/// witnessed store, no violation PC is reachable from the store's
/// out-neighbours without entering a blocked node (a fence before PC v
/// intercepts every entry into v, since branch targets are labels and
/// labels are never candidates).
bool cutsAllPairs(const CutProblem &P, const std::vector<bool> &Blocked,
                  unsigned &Checks) {
  ++Checks;
  const unsigned N = static_cast<unsigned>(P.Adj.size());
  std::vector<bool> Seen(N);
  std::vector<unsigned> Work;
  for (const auto &SV : P.ByStore) {
    std::fill(Seen.begin(), Seen.end(), false);
    Work.clear();
    for (unsigned S : P.Adj[SV.first])
      if (!Blocked[S] && !Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
    while (!Work.empty()) {
      unsigned PC = Work.back();
      Work.pop_back();
      for (unsigned S : P.Adj[PC])
        if (!Blocked[S] && !Seen[S]) {
          Seen[S] = true;
          Work.push_back(S);
        }
    }
    for (unsigned V : SV.second)
      if (Seen[V])
        return false;
  }
  return true;
}

/// Pair indexes of \p P cut by \p Fences (for per-fence display stats).
std::set<std::size_t> cutPairIndexes(const CutProblem &P,
                                     const std::vector<unsigned> &Fences) {
  const unsigned N = static_cast<unsigned>(P.Adj.size());
  std::vector<bool> Blocked(N, false);
  for (unsigned F : Fences)
    Blocked[F] = true;
  std::set<std::size_t> Cut;
  std::vector<bool> Seen(N);
  std::vector<unsigned> Work;
  std::map<unsigned, std::vector<bool>> ReachByStore;
  for (const auto &SV : P.ByStore) {
    std::fill(Seen.begin(), Seen.end(), false);
    Work.clear();
    for (unsigned S : P.Adj[SV.first])
      if (!Blocked[S] && !Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
    while (!Work.empty()) {
      unsigned PC = Work.back();
      Work.pop_back();
      for (unsigned S : P.Adj[PC])
        if (!Blocked[S] && !Seen[S]) {
          Seen[S] = true;
          Work.push_back(S);
        }
    }
    ReachByStore[SV.first] = Seen;
  }
  for (std::size_t I = 0; I < P.Pairs.size(); ++I)
    if (!ReachByStore[P.Pairs[I].first][P.Pairs[I].second])
      Cut.insert(I);
  return Cut;
}

/// The first non-label PC at or after \p PC, or nullopt past the end.
std::optional<unsigned> firstNonLabelAt(const Module &M, unsigned PC) {
  for (unsigned P = PC; P < M.Code.size(); ++P)
    if (M.Code[P].K != Instr::Kind::Label)
      return P;
  return std::nullopt;
}

/// The guaranteed-sufficient anchor for a witnessed store: the first
/// non-label instruction after it. Stores fall through, so every path
/// from the store funnels through this PC before reaching anything.
std::optional<unsigned> anchorAfterStore(const Module &M, unsigned StorePC) {
  return firstNonLabelAt(M, StorePC + 1);
}

/// Exact minimum-cut search: combinations of \p Cands in increasing size
/// and lexicographic order (deterministic tie-break: lowest PCs win).
/// Returns nullopt when no cut of size <= MaxK exists or the check
/// budget runs out.
std::optional<std::vector<unsigned>> exactMinCut(
    const CutProblem &P, const std::vector<unsigned> &Cands, unsigned MaxK,
    unsigned &Checks, unsigned Budget) {
  const unsigned N = static_cast<unsigned>(P.Adj.size());
  const unsigned NC = static_cast<unsigned>(Cands.size());
  std::vector<bool> Blocked(N, false);
  for (unsigned K = 1; K <= std::min(MaxK, NC); ++K) {
    std::vector<unsigned> Sel(K);
    for (unsigned I = 0; I < K; ++I)
      Sel[I] = I;
    while (true) {
      if (Checks >= Budget)
        return std::nullopt;
      std::fill(Blocked.begin(), Blocked.end(), false);
      for (unsigned I : Sel)
        Blocked[Cands[I]] = true;
      if (cutsAllPairs(P, Blocked, Checks)) {
        std::vector<unsigned> F;
        F.reserve(K);
        for (unsigned I : Sel)
          F.push_back(Cands[I]);
        return F;
      }
      int I = static_cast<int>(K) - 1;
      while (I >= 0 && Sel[I] == NC - K + I)
        --I;
      if (I < 0)
        break;
      ++Sel[I];
      for (unsigned J = I + 1; J < K; ++J)
        Sel[J] = Sel[J - 1] + 1;
    }
  }
  return std::nullopt;
}

/// Greedy max-coverage cut, topped up with per-store anchors for any
/// pair the greedy picks fail to cover. Always returns a cut.
std::vector<unsigned> greedyCut(const Module &M, const CutProblem &P,
                                const std::vector<unsigned> &Cands,
                                unsigned &Checks) {
  std::vector<unsigned> F;
  std::set<std::size_t> Covered;
  while (Covered.size() < P.Pairs.size()) {
    unsigned Best = 0;
    std::size_t BestGain = 0;
    for (unsigned C : Cands) {
      if (std::find(F.begin(), F.end(), C) != F.end())
        continue;
      std::vector<unsigned> Try = F;
      Try.push_back(C);
      ++Checks;
      std::size_t Gain = cutPairIndexes(P, Try).size() - Covered.size();
      if (Gain > BestGain) {
        BestGain = Gain;
        Best = C;
      }
    }
    if (BestGain == 0)
      break;
    F.push_back(Best);
    Covered = cutPairIndexes(P, F);
  }
  // Anchor any store whose pairs remain uncovered.
  for (std::size_t I = 0; I < P.Pairs.size(); ++I) {
    if (Covered.count(I))
      continue;
    if (auto A = anchorAfterStore(M, P.Pairs[I].first))
      if (std::find(F.begin(), F.end(), *A) == F.end())
        F.push_back(*A);
    Covered = cutPairIndexes(P, F);
  }
  std::sort(F.begin(), F.end());
  return F;
}

/// Per-entry reachable-PC sets over the plain successor graph (calls
/// fall through; entry bodies are contiguous), for attributing a fence
/// to the entry whose code carries it.
std::map<std::string, std::vector<bool>> entryReachability(const Module &M) {
  std::map<std::string, std::vector<bool>> R;
  for (const auto &E : M.Entries) {
    std::vector<bool> Seen(M.Code.size(), false);
    std::vector<unsigned> Work;
    if (E.second.PCIndex < M.Code.size()) {
      Seen[E.second.PCIndex] = true;
      Work.push_back(E.second.PCIndex);
    }
    while (!Work.empty()) {
      unsigned PC = Work.back();
      Work.pop_back();
      for (unsigned S : successors(M, PC))
        if (S < M.Code.size() && !Seen[S]) {
          Seen[S] = true;
          Work.push_back(S);
        }
    }
    R[E.first] = std::move(Seen);
  }
  return R;
}

} // namespace

std::string FencePlacement::describe() const {
  StrBuilder B;
  B << "mfence @" << RepairedPC << " before [" << BeforePC << "] "
    << AnchorText;
  if (!Entry.empty())
    B << " (entry '" << Entry << "'";
  if (WitnessesCut > 0)
    B << (Entry.empty() ? " (" : ", ") << WitnessesCut << " witness pair"
      << (WitnessesCut == 1 ? "" : "s");
  if (!Entry.empty() || WitnessesCut > 0)
    B << ")";
  return B.take();
}

std::string FenceSynthResult::toString() const {
  StrBuilder B;
  B << "fence synthesis: " << repairOutcomeName(Outcome) << ", "
    << Fences.size() << " fence" << (Fences.size() == 1 ? "" : "s")
    << " for " << WitnessPairs << " witness pair"
    << (WitnessPairs == 1 ? "" : "s") << " (" << CandidatePoints
    << " candidate points, " << CutChecks << " cut checks)\n";
  for (const FencePlacement &F : Fences)
    B << "  " << F.describe() << '\n';
  for (const std::string &N : Notes)
    B << "  note: " << N << '\n';
  B << "  before: " << robustVerdictName(Before.Verdict)
    << ", after: " << robustVerdictName(After.Verdict) << '\n';
  return B.take();
}

FenceSynthResult ccc::analysis::synthesizeFences(const Module &M,
                                                 const RobustContext *Ctx,
                                                 MemModel Model) {
  FenceSynthResult R;
  R.Before = robustness(M, Ctx, Model);
  if (R.Before.robust()) {
    R.Outcome = RepairOutcome::AlreadyRobust;
    R.After = R.Before;
    return R;
  }

  // Harvest the distinct (pending access, violation) pairs the cut must
  // cover. Load-axis witnesses participate uniformly: W.Store then holds
  // the deferred load, and a fence anywhere on the load-to-violation
  // path completion-forces it (mfence is a full barrier on both axes).
  CutProblem P;
  P.Adj = buildFenceFreeGraph(M, Ctx);
  {
    std::set<std::pair<unsigned, unsigned>> Seen;
    for (const TriangularWitness &W : R.Before.Witnesses) {
      unsigned Viol;
      if (W.Load)
        Viol = W.Load->PC;
      else if (W.Escape)
        Viol = W.Escape->PC;
      else
        continue;
      if (W.Store.PC >= M.Code.size() || Viol >= M.Code.size())
        continue;
      if (Seen.insert({W.Store.PC, Viol}).second) {
        P.Pairs.emplace_back(W.Store.PC, Viol);
        P.ByStore[W.Store.PC].push_back(Viol);
      }
    }
  }
  R.WitnessPairs = static_cast<unsigned>(P.Pairs.size());
  if (P.Pairs.empty()) {
    R.After = R.Before;
    R.Notes.push_back("no usable witness pairs: cannot repair");
    return R;
  }

  // Candidates: non-label PCs inside some store's fence-free danger
  // region (or a violation PC itself) — nothing outside can lie on a
  // store-to-violation path.
  std::set<unsigned> CandSet;
  for (const auto &SV : P.ByStore) {
    std::vector<bool> Seen(P.Adj.size(), false);
    std::vector<unsigned> Work;
    for (unsigned S : P.Adj[SV.first])
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
    while (!Work.empty()) {
      unsigned PC = Work.back();
      Work.pop_back();
      if (M.Code[PC].K != Instr::Kind::Label)
        CandSet.insert(PC);
      for (unsigned S : P.Adj[PC])
        if (!Seen[S]) {
          Seen[S] = true;
          Work.push_back(S);
        }
    }
  }
  std::vector<unsigned> Cands(CandSet.begin(), CandSet.end());
  R.CandidatePoints = static_cast<unsigned>(Cands.size());

  // Propose a cut: exact search up to the per-store-anchor bound, greedy
  // plus anchors past the budget.
  const unsigned MaxK = static_cast<unsigned>(P.ByStore.size());
  constexpr unsigned Budget = 200000;
  std::vector<unsigned> F;
  if (auto Exact = exactMinCut(P, Cands, MaxK, R.CutChecks, Budget)) {
    F = *Exact;
    R.Notes.push_back("exact graph cut of size " +
                      std::to_string(F.size()));
  } else {
    F = greedyCut(M, P, Cands, R.CutChecks);
    R.Notes.push_back("greedy graph cut of size " + std::to_string(F.size()) +
                      " (exact search exhausted)");
  }

  // Certify the proposal; fall back to per-store anchors when the graph
  // cut does not satisfy the certifier (the graph is approximate in both
  // directions only for *summarized* flows; the anchors are sufficient
  // by the store's single fall-through funnel).
  auto certify = [&](const std::vector<unsigned> &Fences,
                     std::shared_ptr<Module> &Out) {
    Out = insertFences(M, Fences);
    return robustness(*Out, Ctx, Model);
  };
  std::sort(F.begin(), F.end());
  std::shared_ptr<Module> Repaired;
  RobustReport After = certify(F, Repaired);
  if (!After.robust()) {
    std::vector<unsigned> Anchors;
    for (const auto &SV : P.ByStore)
      if (auto A = anchorAfterStore(M, SV.first))
        Anchors.push_back(*A);
    std::sort(Anchors.begin(), Anchors.end());
    Anchors.erase(std::unique(Anchors.begin(), Anchors.end()), Anchors.end());
    if (!Anchors.empty() && Anchors != F) {
      RobustReport A2 = certify(Anchors, Repaired);
      if (A2.robust()) {
        F = Anchors;
        After = std::move(A2);
        R.Notes.push_back("graph cut rejected by certifier; "
                          "per-store anchors used");
      }
    }
  }
  if (!After.robust()) {
    R.After = std::move(After);
    R.Notes.push_back("no fence set certified: module left unrepaired");
    return R;
  }

  // Certifier-backed minimality pruning: drop any fence whose removal
  // keeps the module Robust, until no single removal does. This is what
  // makes the single-fence-removal regression property hold regardless
  // of how good the graph cut was.
  bool Pruned = true;
  while (Pruned) {
    Pruned = false;
    for (std::size_t I = 0; I < F.size(); ++I) {
      std::vector<unsigned> Without = F;
      Without.erase(Without.begin() + static_cast<long>(I));
      std::shared_ptr<Module> Try;
      RobustReport TryReport = certify(Without, Try);
      ++R.CutChecks;
      if (TryReport.robust()) {
        R.Notes.push_back("pruned redundant fence before PC " +
                          std::to_string(F[I]));
        F = std::move(Without);
        Repaired = std::move(Try);
        After = std::move(TryReport);
        Pruned = true;
        break;
      }
    }
  }

  R.Outcome = RepairOutcome::Repaired;
  R.RepairedModule = Repaired;
  R.After = std::move(After);

  // Placements: F is sorted, so fence i lands at BeforePC + i in the
  // rewritten stream.
  auto Reach = entryReachability(M);
  std::set<std::size_t> BaseCut = cutPairIndexes(P, F);
  for (std::size_t I = 0; I < F.size(); ++I) {
    FencePlacement FP;
    FP.BeforePC = F[I];
    FP.RepairedPC = F[I] + static_cast<unsigned>(I);
    FP.AnchorText = M.Code[F[I]].toString();
    for (const auto &E : Reach)
      if (E.second[F[I]]) {
        FP.Entry = E.first;
        break;
      }
    std::vector<unsigned> Without = F;
    Without.erase(Without.begin() + static_cast<long>(I));
    std::set<std::size_t> WithoutCut = cutPairIndexes(P, Without);
    for (std::size_t Pair : BaseCut)
      if (!WithoutCut.count(Pair))
        ++FP.WitnessesCut;
    R.Fences.push_back(std::move(FP));
  }
  return R;
}

bool ccc::analysis::verifyFenceMinimality(const Module &M,
                                          const RobustContext *Ctx,
                                          const FenceSynthResult &R,
                                          std::string *Why, MemModel Model) {
  auto explain = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (!R.repaired())
    return explain("result is not Repaired");
  if (R.Fences.empty())
    return explain("Repaired result carries no fences");
  std::vector<unsigned> All;
  All.reserve(R.Fences.size());
  for (const FencePlacement &F : R.Fences)
    All.push_back(F.BeforePC);
  for (std::size_t I = 0; I < All.size(); ++I) {
    std::vector<unsigned> Without = All;
    Without.erase(Without.begin() + static_cast<long>(I));
    auto M2 = insertFences(M, Without);
    RobustReport Rep = robustness(*M2, Ctx, Model);
    if (Rep.robust())
      return explain("removing the fence before PC " +
                     std::to_string(All[I]) +
                     " keeps the module Robust: the set is not minimal");
  }
  return true;
}

bool ProgramRepairReport::allRepaired() const {
  for (const ModuleRepair &M : Modules)
    if (!M.Synth.repaired())
      return false;
  return true;
}

std::string ProgramRepairReport::toString() const {
  StrBuilder B;
  B << "program repair: " << ModulesRepaired << " module"
    << (ModulesRepaired == 1 ? "" : "s") << " repaired, " << FencesInserted
    << " fence" << (FencesInserted == 1 ? "" : "s") << " inserted\n";
  for (const ModuleRepair &M : Modules)
    B << "module '" << M.Name << "': " << M.Synth.toString();
  return B.take();
}

ProgramRepairReport ccc::analysis::repairRobustness(Program &P) {
  ProgramRepairReport Rep;
  std::map<std::string, RobustContext> Ctxs = robustContexts(P);
  for (unsigned I = 0; I < P.modules().size(); ++I) {
    ModuleDecl &D = P.module(I);
    auto *L = dynamic_cast<const X86Lang *>(D.Lang.get());
    if (!L || L->memModel() == MemModel::SC)
      continue;
    auto It = Ctxs.find(D.Name);
    const RobustContext *Ctx = It == Ctxs.end() ? nullptr : &It->second;
    FenceSynthResult S = synthesizeFences(L->module(), Ctx, L->memModel());
    if (S.Outcome == RepairOutcome::AlreadyRobust)
      continue;
    if (S.repaired()) {
      D.Lang = std::make_unique<X86Lang>(S.RepairedModule, L->memModel(),
                                         L->objectMode());
      if (P.linked())
        D.Lang->bindGlobals(&D.GE);
      ++Rep.ModulesRepaired;
      Rep.FencesInserted += static_cast<unsigned>(S.Fences.size());
    }
    Rep.Modules.push_back({D.Name, std::move(S)});
  }
  return Rep;
}

unsigned ccc::analysis::repairAndApplyScFastPath(Program &P,
                                                 ProgramRepairReport *Rep) {
  ProgramRepairReport R = repairRobustness(P);
  unsigned Switched = switchRobustToSc(P, programRobustness(P));
  if (Rep)
    *Rep = std::move(R);
  return Switched;
}
