//===- mem/Mem.cpp - The global memory state ------------------------------===//

#include "mem/Mem.h"

#include "core/BinResidue.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <bit>

using namespace ccc;

const Mem::PageRef *Mem::findPage(uint32_t Idx) const {
  auto It = std::lower_bound(
      Pages.begin(), Pages.end(), Idx,
      [](const PageEntry &E, uint32_t I) { return E.Index < I; });
  if (It == Pages.end() || It->Index != Idx)
    return nullptr;
  return &It->P;
}

Mem::PageEntry *Mem::findPageEntry(uint32_t Idx) {
  auto It = std::lower_bound(
      Pages.begin(), Pages.end(), Idx,
      [](const PageEntry &E, uint32_t I) { return E.Index < I; });
  if (It == Pages.end() || It->Index != Idx)
    return nullptr;
  return &*It;
}

bool Mem::store(Addr A, const Value &V) {
  PageEntry *E = findPageEntry(A >> PageBits);
  if (!E)
    return false;
  const unsigned S = A & SlotMask;
  if (!((E->P->AllocMask >> S) & 1))
    return false;
  const Value &Old = E->P->Slots[S];
  if (Old == V)
    return true;
  const uint64_t Delta = slotHash(A, Old) ^ slotHash(A, V);
  Page &P = pageForWrite(*E);
  P.Slots[S] = V;
  P.Hash ^= Delta;
  P.InternCache.store(0, std::memory_order_relaxed);
  Hash ^= Delta;
  ResidueCache = 0;
  return true;
}

bool Mem::alloc(Addr A, const Value &Init) {
  const uint32_t Idx = A >> PageBits;
  const unsigned S = A & SlotMask;
  auto It = std::lower_bound(
      Pages.begin(), Pages.end(), Idx,
      [](const PageEntry &E, uint32_t I) { return E.Index < I; });
  if (It == Pages.end() || It->Index != Idx) {
    PageEntry Fresh;
    Fresh.Index = Idx;
    Fresh.P = PageRef(pagePool().acquire());
    It = Pages.insert(It, std::move(Fresh));
  } else if ((It->P->AllocMask >> S) & 1) {
    return false;
  }
  const uint64_t Delta = slotHash(A, Init);
  Page &P = pageForWrite(*It);
  P.Slots[S] = Init;
  P.AllocMask |= uint64_t(1) << S;
  P.Hash ^= Delta;
  P.InternCache.store(0, std::memory_order_relaxed);
  Hash ^= Delta;
  ResidueCache = 0;
  ++DomCount;
  return true;
}

bool Mem::operator==(const Mem &Other) const {
  if (Hash != Other.Hash || DomCount != Other.DomCount ||
      Pages.size() != Other.Pages.size())
    return false;
  for (std::size_t I = 0, N = Pages.size(); I != N; ++I) {
    const PageEntry &L = Pages[I], &R = Other.Pages[I];
    if (L.Index != R.Index)
      return false;
    if (L.P == R.P)
      continue;
    if (L.P->AllocMask != R.P->AllocMask || L.P->Hash != R.P->Hash ||
        L.P->Slots != R.P->Slots)
      return false;
  }
  return true;
}

bool Mem::eqOn(const Mem &Other, const AddrSet &Set) const {
  // Group the (sorted) address set by page so a page shared between the
  // two memories is skipped with one pointer compare.
  const std::vector<Addr> &E = Set.elems();
  const std::size_t N = E.size();
  for (std::size_t I = 0; I != N;) {
    const uint32_t Idx = E[I] >> PageBits;
    const PageRef *L = findPage(Idx);
    const PageRef *R = Other.findPage(Idx);
    if (L && R && *L == *R) {
      while (I != N && (E[I] >> PageBits) == Idx)
        ++I;
      continue;
    }
    for (; I != N && (E[I] >> PageBits) == Idx; ++I) {
      const Addr A = E[I];
      const unsigned S = A & SlotMask;
      const bool InL = L && (((*L)->AllocMask >> S) & 1);
      const bool InR = R && (((*R)->AllocMask >> S) & 1);
      if (InL != InR)
        return false;
      if (InL && (*L)->Slots[S] != (*R)->Slots[S])
        return false;
    }
  }
  return true;
}

std::string Mem::key() const {
  StrBuilder B;
  forEach([&B](Addr A, const Value &V) {
    B << static_cast<uint64_t>(A) << '=' << V.toString() << ';';
  });
  return B.take();
}

std::string Mem::toString() const {
  StrBuilder B;
  B << "[";
  bool First = true;
  forEach([&](Addr A, const Value &V) {
    if (!First)
      B << ", ";
    First = false;
    B << static_cast<uint64_t>(A) << " -> " << V.toString();
  });
  B << "]";
  return B.take();
}

std::size_t Mem::pageBytes() { return sizeof(Page); }

std::size_t Mem::shallowBytes() const {
  return sizeof(Mem) + Pages.capacity() * sizeof(PageEntry);
}

RecyclingPool<Mem::Page> &Mem::pagePool() {
  // Leaked on purpose: pages held by static-storage Mems release during
  // teardown in unspecified order, so the pool must outlive them all.
  static RecyclingPool<Page> *P = new RecyclingPool<Page>();
  return *P;
}

PoolStats Mem::pagePoolStats() { return pagePool().stats(); }

uint32_t Mem::pageRoot(const Page &P, ResidueBuf &B) {
  uint32_t Id;
  uint64_t Cached = P.InternCache.load(std::memory_order_relaxed);
  if (B.store().cacheHit(Cached, Id))
    return Id;
  Id = B.subIntern([&] {
    // The bitmap pins which slots follow, and unallocated slots are
    // kept at Value(), so this is a canonical encoding of the page
    // content: word-equal iff the pages compare content-equal.
    B.word64(P.AllocMask);
    uint64_t Mask = P.AllocMask;
    while (Mask) {
      const unsigned S = static_cast<unsigned>(std::countr_zero(Mask));
      Mask &= Mask - 1;
      B.word(static_cast<uint32_t>(P.Slots[S].kind()));
      B.word(P.Slots[S].rawBits());
    }
  });
  P.InternCache.store(B.store().cacheWord(Id), std::memory_order_relaxed);
  return Id;
}

uint32_t Mem::residueRoot(ResidueBuf &B) const {
  uint32_t Id;
  if (B.store().cacheHit(ResidueCache, Id))
    return Id;
  Id = B.subIntern([&] {
    for (const PageEntry &E : Pages) {
      B.word(E.Index);
      B.word(pageRoot(*E.P, B));
    }
  });
  ResidueCache = B.store().cacheWord(Id);
  return Id;
}
