# Empty dependencies file for cascc.
# This may be replaced when dependencies are built.
