//===- clight/ClightLang.h - Clight instantiation of the framework -*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Clight-subset instantiation of the abstract module language
/// (Sec. 7.1): footprint-instrumented small-step semantics where function
/// locals are allocated from the thread's free list (as in CompCert
/// Clight, where kappa = (c, N) tracks the next block to allocate).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CLIGHT_CLIGHTLANG_H
#define CASCC_CLIGHT_CLIGHTLANG_H

#include "clight/ClightAst.h"
#include "core/ModuleLang.h"
#include "core/Program.h"

#include <memory>

namespace ccc {
namespace clight {

/// Clight as a ModuleLang.
class ClightLang : public ModuleLang {
public:
  explicit ClightLang(std::shared_ptr<const Module> M);
  ~ClightLang() override;

  std::string name() const override { return "Clight"; }

  CoreRef initCore(const std::string &Entry,
                   const std::vector<Value> &Args) const override;

  std::vector<LocalStep> step(const FreeList &F, const Core &C,
                              const Mem &M) const override;

  CoreRef applyReturn(const Core &C, const Value &V) const override;

  /// POR points: one token per pending statement on the continuation
  /// stack. Frame allocation and call-result stores are reported through
  /// \p Extra (own-frame flags, or the concrete global cell).
  bool porPoints(const FreeList &F, const Core &C, std::vector<PorPoint> &Out,
                 EffectSummary &Extra) const override;

  const Module &module() const { return *Mod; }
  std::shared_ptr<const Module> moduleRef() const { return Mod; }

private:
  std::shared_ptr<const Module> Mod;
};

/// Registers a Clight module parsed from \p Source with \p P; returns the
/// module index.
unsigned addClightModule(Program &P, const std::string &Name,
                         const std::string &Source);

/// Registers an already-parsed Clight module with \p P.
unsigned addClightModule(Program &P, const std::string &Name,
                         std::shared_ptr<const Module> M);

} // namespace clight
} // namespace ccc

#endif // CASCC_CLIGHT_CLIGHTLANG_H
