# Empty compiler generated dependencies file for cascc_tests.
# This may be replaced when dependencies are built.
