//===- core/ModuleLang.h - The abstract module language ---------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract module language (paper: tl = (Module, Core, InitCore, |->),
/// Fig. 4). A ModuleLang bundles a module's code with its footprint-
/// instrumented local transition relation: each step, given the module's
/// free list, current core and global memory, yields a set of successor
/// configurations labelled with a message and a footprint, or abort.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_MODULELANG_H
#define CASCC_CORE_MODULELANG_H

#include "core/Core.h"
#include "core/MemModel.h"
#include "core/Msg.h"
#include "mem/Footprint.h"
#include "mem/FreeList.h"
#include "mem/GlobalEnv.h"
#include "mem/Mem.h"

#include <string>
#include <vector>

namespace ccc {

/// One module-local step: F |- (kappa, sigma) -iota/delta-> (kappa',sigma')
/// or abort (Fig. 4).
struct LocalStep {
  Msg M;
  Footprint FP;
  CoreRef Next;
  Mem NextMem;
  bool Abort = false;
  /// Diagnostic attached to abort steps.
  std::string AbortReason;

  static LocalStep abort(std::string Reason) {
    LocalStep S;
    S.Abort = true;
    S.AbortReason = std::move(Reason);
    return S;
  }
};

/// An opaque handle onto one outstanding static program point of a core:
/// the token identifies the point to the language's static analysis (a
/// statement node, an instruction slot, ...), Aux carries a language-
/// specific discriminator (e.g. the x86 PC index).
struct PorPoint {
  const void *Token = nullptr;
  uint32_t Aux = 0;
};

/// A conservative static effect summary: the global cells a fragment may
/// read/write, plus flags for accesses confined to the owning thread's
/// free-list region (which can never conflict across threads). Unknown
/// is the top element — the fragment may touch anything.
struct EffectSummary {
  AddrSet R;
  AddrSet W;
  bool OwnR = false;
  bool OwnW = false;
  bool Unknown = false;

  static EffectSummary top() {
    EffectSummary S;
    S.Unknown = true;
    return S;
  }

  void unionWith(const EffectSummary &O) {
    Unknown = Unknown || O.Unknown;
    OwnR = OwnR || O.OwnR;
    OwnW = OwnW || O.OwnW;
    R.unionWith(O.R);
    W.unionWith(O.W);
  }

  void addRead(Addr A) { R.insert(A); }
  void addWrite(Addr A) { W.insert(A); }

  /// True when the fragment provably performs no memory access at all
  /// (such a step commutes with everything, even Unknown peers).
  bool touchesNothing() const {
    return !Unknown && !OwnR && !OwnW && R.empty() && W.empty();
  }
};

/// The abstract module language interface every concrete language
/// (CImp, Clight, the compiler IRs, x86-SC, x86-TSO) instantiates.
class ModuleLang {
public:
  virtual ~ModuleLang();

  /// The language's name ("Clight", "RTL", "x86-TSO", ...).
  virtual std::string name() const = 0;

  /// The memory model this module's local semantics runs under. The
  /// source-level languages and the compiler IRs are SC by construction;
  /// machine-level languages override this with their declared model.
  virtual MemModel memModel() const { return MemModel::SC; }

  /// InitCore (Fig. 4): builds the initial core for entry \p Entry with
  /// arguments \p Args, or null if this module does not define the entry.
  virtual CoreRef initCore(const std::string &Entry,
                           const std::vector<Value> &Args) const = 0;

  /// The local transition relation: all successor configurations of
  /// (\p C, \p M) under free list \p F. An empty result means the core is
  /// stuck (the global semantics reports abort).
  virtual std::vector<LocalStep> step(const FreeList &F, const Core &C,
                                      const Mem &M) const = 0;

  /// Resumes a caller core after an external call returned \p V
  /// (Compositional CompCert's after-external).
  virtual CoreRef applyReturn(const Core &C, const Value &V) const = 0;

  /// Enumerates the outstanding static program points of \p C for the
  /// independence analysis (partial-order reduction). On success, \p Out
  /// lists the core's pending points most-imminent first, and \p Extra
  /// accumulates effects not attributable to any static point (pending
  /// TSO store-buffer flushes, frame allocation, call-result stores) —
  /// with concrete addresses where available. The contract:
  ///
  ///  - the frame's next local step's footprint is covered by the
  ///    analysis' instruction summary of Out[0] united with Extra
  ///    (an empty Out with Extra covers it entirely, e.g. implicit ret);
  ///  - every footprint the frame may ever produce is covered by the
  ///    union of the points' subtree-closure summaries united with Extra.
  ///
  /// Returns false when the core cannot be summarized — the exploration
  /// then treats the whole thread as Unknown (conflicts with everything).
  /// The default keeps every language sound and un-reduced.
  virtual bool porPoints(const FreeList &F, const Core &C,
                         std::vector<PorPoint> &Out,
                         EffectSummary &Extra) const {
    (void)F;
    (void)C;
    (void)Out;
    (void)Extra;
    return false;
  }

  /// Binds the module's resolved global environment after linking.
  void bindGlobals(const GlobalEnv *GE) { Globals = GE; }
  const GlobalEnv *globals() const { return Globals; }

  /// Resolves a global name to its linked address; asserts on failure.
  Addr globalAddr(const std::string &Name) const;

protected:
  ModuleLang() = default;
  const GlobalEnv *Globals = nullptr;
};

} // namespace ccc

#endif // CASCC_CORE_MODULELANG_H
