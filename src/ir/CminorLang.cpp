//===- ir/CminorLang.cpp - Cminor and CminorSel interpreters --------------===//

#include "ir/IRLangs.h"

#include "support/StrUtil.h"

#include <cassert>

using namespace ccc;
using namespace ccc::ir;

// ---------------------------------------------------------------------------
// Cminor
// ---------------------------------------------------------------------------

namespace {

template <typename StmtT> struct TempKontItem {
  enum class Kind { Stmt, StoreRet };
  Kind K = Kind::Stmt;
  const StmtT *S = nullptr;
  bool HasDst = false;
  unsigned Dst = 0;
};

/// Shared core shape for the temp-based structured IRs.
template <typename FunctionT, typename StmtT>
class TempCore : public Core {
public:
  const FunctionT *F = nullptr;
  std::vector<Value> Temps;
  std::vector<TempKontItem<StmtT>> Kont;
  Value PendingVal;
  bool HasPending = false;

  std::string key() const override {
    StrBuilder B;
    B << 'f' << reinterpret_cast<uintptr_t>(F);
    if (HasPending)
      B << 'p' << PendingVal.toString();
    for (const auto &I : Kont) {
      if (I.K == TempKontItem<StmtT>::Kind::Stmt)
        B << 's' << reinterpret_cast<uintptr_t>(I.S) << ';';
      else
        B << "sr" << (I.HasDst ? std::to_string(I.Dst) : "-") << ';';
    }
    B << '|';
    for (const Value &V : Temps)
      B << V.toString() << ',';
    return B.take();
  }
};

template <typename CoreT, typename BlockT>
void pushTempBlock(CoreT &C, const BlockT &B) {
  using ItemT = std::decay_t<decltype(C.Kont.back())>;
  for (auto It = B.rbegin(); It != B.rend(); ++It)
    C.Kont.push_back(ItemT{ItemT::Kind::Stmt, It->get(), false, 0});
}

using CmCore = TempCore<cminor::Function, cminor::Stmt>;
using SelCore = TempCore<cminorsel::Function, cminorsel::Stmt>;

std::optional<Value> evalCmExpr(const cminor::Expr &E,
                                const std::vector<Value> &Temps,
                                const GlobalEnv &GE, const Mem &M,
                                Footprint &FP) {
  using cminor::Expr;
  switch (E.K) {
  case Expr::Kind::Const:
    return Value::makeInt(E.IntVal);
  case Expr::Kind::Temp:
    if (E.Temp >= Temps.size())
      return std::nullopt;
    return Temps[E.Temp];
  case Expr::Kind::AddrGlobal: {
    auto A = GE.lookup(E.Global);
    if (!A)
      return std::nullopt;
    return Value::makePtr(*A);
  }
  case Expr::Kind::Load: {
    auto A = evalCmExpr(*E.L, Temps, GE, M, FP);
    if (!A || !A->isPtr())
      return std::nullopt;
    auto V = M.load(A->asPtr());
    if (!V)
      return std::nullopt;
    FP.addRead(A->asPtr());
    return V;
  }
  case Expr::Kind::Un: {
    auto V = evalCmExpr(*E.L, Temps, GE, M, FP);
    if (!V || !V->isInt())
      return std::nullopt;
    if (E.U == clight::UnOp::Neg)
      return Value::makeInt(
          static_cast<int32_t>(-static_cast<uint32_t>(V->asInt())));
    return Value::makeInt(V->asInt() == 0 ? 1 : 0);
  }
  case Expr::Kind::Bin: {
    auto L = evalCmExpr(*E.L, Temps, GE, M, FP);
    auto R = evalCmExpr(*E.R, Temps, GE, M, FP);
    if (!L || !R)
      return std::nullopt;
    using clight::BinOp;
    if (L->isPtr() || R->isPtr()) {
      if (E.B == BinOp::Eq)
        return Value::makeInt(*L == *R ? 1 : 0);
      if (E.B == BinOp::Ne)
        return Value::makeInt(*L == *R ? 0 : 1);
      return std::nullopt;
    }
    if (!L->isInt() || !R->isInt())
      return std::nullopt;
    int32_t A = L->asInt(), B = R->asInt();
    auto Wrap = [](int64_t V) {
      return Value::makeInt(static_cast<int32_t>(static_cast<uint32_t>(V)));
    };
    switch (E.B) {
    case BinOp::Add:
      return Wrap(static_cast<int64_t>(A) + B);
    case BinOp::Sub:
      return Wrap(static_cast<int64_t>(A) - B);
    case BinOp::Mul:
      return Wrap(static_cast<int64_t>(A) * B);
    case BinOp::Div:
      return B == 0 ? std::nullopt
                    : std::optional<Value>(Wrap(static_cast<int64_t>(A) / B));
    case BinOp::Mod:
      return B == 0 ? std::nullopt
                    : std::optional<Value>(Wrap(static_cast<int64_t>(A) % B));
    case BinOp::Eq:
      return Value::makeInt(A == B);
    case BinOp::Ne:
      return Value::makeInt(A != B);
    case BinOp::Lt:
      return Value::makeInt(A < B);
    case BinOp::Le:
      return Value::makeInt(A <= B);
    case BinOp::Gt:
      return Value::makeInt(A > B);
    case BinOp::Ge:
      return Value::makeInt(A >= B);
    case BinOp::And:
      return Value::makeInt(A != 0 && B != 0);
    case BinOp::Or:
      return Value::makeInt(A != 0 || B != 0);
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

std::optional<Value> evalSelExpr(const cminorsel::Expr &E,
                                 const std::vector<Value> &Temps,
                                 const GlobalEnv &GE, const Mem &M,
                                 Footprint &FP) {
  using cminorsel::Expr;
  switch (E.K) {
  case Expr::Kind::Temp:
    if (E.Temp >= Temps.size())
      return std::nullopt;
    return Temps[E.Temp];
  case Expr::Kind::Load: {
    auto A = evalSelExpr(*E.Args[0], Temps, GE, M, FP);
    if (!A || !A->isPtr())
      return std::nullopt;
    auto V = M.load(A->asPtr());
    if (!V)
      return std::nullopt;
    FP.addRead(A->asPtr());
    return V;
  }
  case Expr::Kind::Op: {
    Addr GA = 0;
    if (E.O == Oper::Addrglobal) {
      auto A = GE.lookup(E.Global);
      if (!A)
        return std::nullopt;
      GA = *A;
    }
    Value A, B;
    unsigned Arity = operArity(E.O);
    if (Arity >= 1) {
      auto V = evalSelExpr(*E.Args[0], Temps, GE, M, FP);
      if (!V)
        return std::nullopt;
      A = *V;
    }
    if (Arity >= 2) {
      auto V = evalSelExpr(*E.Args[1], Temps, GE, M, FP);
      if (!V)
        return std::nullopt;
      B = *V;
    }
    return evalOper(E.O, E.C, E.Imm, GA, A, B);
  }
  }
  return std::nullopt;
}

std::optional<bool> evalSelCond(const cminorsel::CondExpr &C,
                                const std::vector<Value> &Temps,
                                const GlobalEnv &GE, const Mem &M,
                                Footprint &FP) {
  auto A = evalSelExpr(*C.Args[0], Temps, GE, M, FP);
  if (!A)
    return std::nullopt;
  Value B = Value::makeInt(C.Imm);
  if (!C.OneArg) {
    auto BV = evalSelExpr(*C.Args[1], Temps, GE, M, FP);
    if (!BV)
      return std::nullopt;
    B = *BV;
  }
  return evalCmp(C.C, *A, B);
}

/// Generic structured-statement stepper shared by Cminor and CminorSel.
/// Eval hooks abstract over expression/condition evaluation.
template <typename CoreT, typename StmtT, typename EvalE, typename EvalC>
std::vector<LocalStep> stepTempLang(const char *LangName, const CoreT &Cr,
                                    const Mem &M, EvalE evalE, EvalC evalC) {
  std::vector<LocalStep> Out;
  auto abort = [&Out, LangName](const std::string &R) {
    Out.push_back(LocalStep::abort(std::string(LangName) + ": " + R));
  };

  if (Cr.Kont.empty()) {
    LocalStep S;
    S.M = Msg::ret(Value::makeInt(0));
    S.NextMem = M;
    S.Next = std::make_shared<CoreT>(Cr);
    Out.push_back(std::move(S));
    return Out;
  }

  const auto Top = Cr.Kont.back();
  auto popped = [&Cr]() {
    auto N = std::make_shared<CoreT>(Cr);
    N->Kont.pop_back();
    return N;
  };

  using Item = TempKontItem<StmtT>;
  if (Top.K == Item::Kind::StoreRet) {
    if (!Cr.HasPending) {
      abort("stepped while awaiting return");
      return Out;
    }
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    auto N = popped();
    N->HasPending = false;
    if (Top.HasDst) {
      if (Top.Dst >= N->Temps.size()) {
        abort("bad call-result temp");
        return Out;
      }
      N->Temps[Top.Dst] = Cr.PendingVal;
    }
    S.Next = std::move(N);
    Out.push_back(std::move(S));
    return Out;
  }

  const StmtT &St = *Top.S;
  Footprint FP;
  auto finish = [&](Msg Ms, CoreRef Next, Mem NM) {
    LocalStep S;
    S.M = std::move(Ms);
    S.FP = FP;
    S.NextMem = std::move(NM);
    S.Next = std::move(Next);
    Out.push_back(std::move(S));
  };

  switch (St.K) {
  case StmtT::Kind::Skip:
    finish(Msg::tau(), popped(), M);
    break;
  case StmtT::Kind::SetTemp: {
    auto V = evalE(*St.E1, FP);
    if (!V) {
      abort("bad expression");
      break;
    }
    auto N = popped();
    if (St.Dst >= N->Temps.size()) {
      abort("bad temp");
      break;
    }
    N->Temps[St.Dst] = *V;
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case StmtT::Kind::Store: {
    auto A = evalE(*St.E1, FP);
    auto V = evalE(*St.E2, FP);
    if (!A || !A->isPtr() || !V) {
      abort("bad store");
      break;
    }
    Mem NM = M;
    if (!NM.store(A->asPtr(), *V)) {
      abort("store to unallocated address");
      break;
    }
    FP.addWrite(A->asPtr());
    finish(Msg::tau(), popped(), std::move(NM));
    break;
  }
  case StmtT::Kind::If: {
    auto V = evalC(St, FP);
    if (!V) {
      abort("bad condition");
      break;
    }
    auto N = popped();
    pushTempBlock(*N, *V ? St.Body : St.Else);
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case StmtT::Kind::While: {
    auto V = evalC(St, FP);
    if (!V) {
      abort("bad condition");
      break;
    }
    auto N = std::make_shared<CoreT>(Cr);
    if (*V)
      pushTempBlock(*N, St.Body);
    else
      N->Kont.pop_back();
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case StmtT::Kind::Call: {
    std::vector<Value> Args;
    bool Bad = false;
    for (const auto &AE : St.Args) {
      auto V = evalE(*AE, FP);
      if (!V) {
        Bad = true;
        break;
      }
      Args.push_back(*V);
    }
    if (Bad) {
      abort("bad call argument");
      break;
    }
    auto N = popped();
    N->Kont.push_back(Item{Item::Kind::StoreRet, nullptr, St.HasDst,
                           St.Dst});
    finish(Msg::extCall(St.Callee, std::move(Args)), std::move(N), M);
    break;
  }
  case StmtT::Kind::Return: {
    Value V = Value::makeInt(0);
    if (St.E1) {
      auto E = evalE(*St.E1, FP);
      if (!E) {
        abort("bad return expression");
        break;
      }
      V = *E;
    }
    auto N = std::make_shared<CoreT>(Cr);
    N->Kont.clear();
    finish(Msg::ret(V), std::move(N), M);
    break;
  }
  case StmtT::Kind::Print: {
    auto V = evalE(*St.E1, FP);
    if (!V || !V->isInt()) {
      abort("print needs an integer");
      break;
    }
    finish(Msg::event(V->asInt()), popped(), M);
    break;
  }
  }
  return Out;
}

template <typename CoreT, typename FunctionT>
CoreRef initTempCore(const FunctionT *F, const std::vector<Value> &Args) {
  if (!F || F->NumParams != Args.size())
    return nullptr;
  auto C = std::make_shared<CoreT>();
  C->F = F;
  C->Temps.assign(F->NumTemps, Value::makeUndef());
  for (std::size_t I = 0; I < Args.size(); ++I)
    C->Temps[I] = Args[I];
  pushTempBlock(*C, F->Body);
  return C;
}

template <typename CoreT>
CoreRef applyTempReturn(const Core &C, const Value &V) {
  const auto &Cr = static_cast<const CoreT &>(C);
  using ItemT = std::decay_t<decltype(Cr.Kont.back())>;
  if (Cr.Kont.empty() || Cr.Kont.back().K != ItemT::Kind::StoreRet)
    return nullptr;
  auto N = std::make_shared<CoreT>(Cr);
  N->PendingVal = V;
  N->HasPending = true;
  return N;
}

} // namespace

CminorLang::CminorLang(std::shared_ptr<const cminor::Module> M)
    : Mod(std::move(M)) {}
CminorLang::~CminorLang() = default;

CoreRef CminorLang::initCore(const std::string &Entry,
                             const std::vector<Value> &Args) const {
  return initTempCore<CmCore>(Mod->find(Entry), Args);
}

std::vector<LocalStep> CminorLang::step(const FreeList &F, const Core &C,
                                        const Mem &M) const {
  (void)F; // our Cminor frames are empty (no address-taken locals)
  const auto &Cr = static_cast<const CmCore &>(C);
  auto EvalE = [&](const cminor::Expr &E, Footprint &FP) {
    return evalCmExpr(E, Cr.Temps, *Globals, M, FP);
  };
  auto EvalC = [&](const cminor::Stmt &S,
                   Footprint &FP) -> std::optional<bool> {
    auto V = evalCmExpr(*S.E1, Cr.Temps, *Globals, M, FP);
    if (!V || !V->isInt())
      return std::nullopt;
    return V->asInt() != 0;
  };
  return stepTempLang<CmCore, cminor::Stmt>("Cminor", Cr, M, EvalE, EvalC);
}

CoreRef CminorLang::applyReturn(const Core &C, const Value &V) const {
  return applyTempReturn<CmCore>(C, V);
}

CminorSelLang::CminorSelLang(std::shared_ptr<const cminorsel::Module> M)
    : Mod(std::move(M)) {}
CminorSelLang::~CminorSelLang() = default;

CoreRef CminorSelLang::initCore(const std::string &Entry,
                                const std::vector<Value> &Args) const {
  return initTempCore<SelCore>(Mod->find(Entry), Args);
}

std::vector<LocalStep> CminorSelLang::step(const FreeList &F, const Core &C,
                                           const Mem &M) const {
  (void)F;
  const auto &Cr = static_cast<const SelCore &>(C);
  auto EvalE = [&](const cminorsel::Expr &E, Footprint &FP) {
    return evalSelExpr(E, Cr.Temps, *Globals, M, FP);
  };
  auto EvalC = [&](const cminorsel::Stmt &S, Footprint &FP) {
    return evalSelCond(S.Cond, Cr.Temps, *Globals, M, FP);
  };
  return stepTempLang<SelCore, cminorsel::Stmt>("CminorSel", Cr, M, EvalE,
                                                EvalC);
}

CoreRef CminorSelLang::applyReturn(const Core &C, const Value &V) const {
  return applyTempReturn<SelCore>(C, V);
}

unsigned ccc::ir::addCminorModule(Program &P, const std::string &Name,
                                  std::shared_ptr<const cminor::Module> M) {
  GlobalEnv GE;
  for (const auto &G : M->Globals)
    GE.declare(G.first, Value::makeInt(G.second), DataOwner::Client);
  return P.addModule(Name, std::make_unique<CminorLang>(M), std::move(GE));
}

unsigned
ccc::ir::addCminorSelModule(Program &P, const std::string &Name,
                            std::shared_ptr<const cminorsel::Module> M) {
  GlobalEnv GE;
  for (const auto &G : M->Globals)
    GE.declare(G.first, Value::makeInt(G.second), DataOwner::Client);
  return P.addModule(Name, std::make_unique<CminorSelLang>(M),
                     std::move(GE));
}
