//===- support/Lexer.h - A small shared tokenizer ---------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small generic tokenizer shared by the CImp, Clight and x86 assembly
/// frontends: identifiers, integer literals, and multi-character symbols.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_SUPPORT_LEXER_H
#define CASCC_SUPPORT_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccc {

/// One token.
struct Token {
  enum class Kind { Ident, Int, Symbol, End };
  Kind K = Kind::End;
  std::string Text;
  int64_t IntVal = 0;
  unsigned Line = 0;

  bool is(Kind Kd) const { return K == Kd; }
  bool isSymbol(const std::string &S) const {
    return K == Kind::Symbol && Text == S;
  }
  bool isIdent(const std::string &S) const {
    return K == Kind::Ident && Text == S;
  }
};

/// Tokenizes \p Source. Symbols are matched greedily against \p Symbols
/// (longest match first). '#' and "//" start a comment to end of line.
/// Returns false (with \p Error set) on an unexpected character.
bool tokenize(const std::string &Source,
              const std::vector<std::string> &Symbols,
              std::vector<Token> &Out, std::string &Error);

/// A token cursor with the usual peek/accept/expect helpers.
class TokenStream {
public:
  explicit TokenStream(std::vector<Token> Toks) : Toks(std::move(Toks)) {}

  const Token &peek(unsigned Ahead = 0) const {
    static const Token EndTok{};
    std::size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : EndTok;
  }

  Token next() {
    Token T = peek();
    if (Pos < Toks.size())
      ++Pos;
    return T;
  }

  bool atEnd() const { return Pos >= Toks.size(); }

  bool accept(const std::string &Symbol) {
    if (peek().isSymbol(Symbol)) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool acceptIdent(const std::string &Ident) {
    if (peek().isIdent(Ident)) {
      ++Pos;
      return true;
    }
    return false;
  }

  unsigned line() const { return peek().Line; }

private:
  std::vector<Token> Toks;
  std::size_t Pos = 0;
};

} // namespace ccc

#endif // CASCC_SUPPORT_LEXER_H
