//===- ir/CsharpminorLang.cpp - C#minor interpreter ------------------------===//

#include "ir/IRLangs.h"

#include "support/StrUtil.h"

#include <cassert>

using namespace ccc;
using namespace ccc::ir;
using namespace ccc::csharp;

namespace {

struct KontItem {
  enum class Kind { Stmt, StoreRet };
  Kind K = Kind::Stmt;
  const Stmt *S = nullptr;
  bool HasDst = false;
  unsigned DstSlot = 0;
};

class CshCore : public Core {
public:
  const Function *F = nullptr;
  bool Allocated = false;
  std::vector<Value> EntryArgs;
  std::vector<KontItem> Kont;
  Value PendingVal;
  bool HasPending = false;

  std::string key() const override {
    StrBuilder B;
    B << 'f' << reinterpret_cast<uintptr_t>(F) << (Allocated ? 'A' : 'U');
    if (HasPending)
      B << 'p' << PendingVal.toString();
    for (const KontItem &I : Kont) {
      if (I.K == KontItem::Kind::Stmt)
        B << 's' << reinterpret_cast<uintptr_t>(I.S) << ';';
      else
        B << "sr" << (I.HasDst ? std::to_string(I.DstSlot) : "-") << ';';
    }
    if (!Allocated) {
      B << "|a:";
      for (const Value &V : EntryArgs)
        B << V.toString() << ',';
    }
    return B.take();
  }
};

void pushBlock(std::vector<KontItem> &K, const Block &B) {
  for (auto It = B.rbegin(); It != B.rend(); ++It)
    K.push_back(KontItem{KontItem::Kind::Stmt, It->get(), false, 0});
}

std::optional<Value> evalExpr(const Expr &E, const FreeList &FL,
                              const GlobalEnv &GE, const Mem &M,
                              Footprint &FP) {
  switch (E.K) {
  case Expr::Kind::Const:
    return Value::makeInt(E.IntVal);
  case Expr::Kind::AddrSlot:
    return Value::makePtr(FL.at(E.Slot));
  case Expr::Kind::AddrGlobal: {
    auto A = GE.lookup(E.Global);
    if (!A)
      return std::nullopt;
    return Value::makePtr(*A);
  }
  case Expr::Kind::Load: {
    auto A = evalExpr(*E.L, FL, GE, M, FP);
    if (!A || !A->isPtr())
      return std::nullopt;
    auto V = M.load(A->asPtr());
    if (!V)
      return std::nullopt;
    FP.addRead(A->asPtr());
    return V;
  }
  case Expr::Kind::Un: {
    auto V = evalExpr(*E.L, FL, GE, M, FP);
    if (!V || !V->isInt())
      return std::nullopt;
    if (E.U == clight::UnOp::Neg)
      return Value::makeInt(
          static_cast<int32_t>(-static_cast<uint32_t>(V->asInt())));
    return Value::makeInt(V->asInt() == 0 ? 1 : 0);
  }
  case Expr::Kind::Bin: {
    auto L = evalExpr(*E.L, FL, GE, M, FP);
    auto R = evalExpr(*E.R, FL, GE, M, FP);
    if (!L || !R)
      return std::nullopt;
    using clight::BinOp;
    if (L->isPtr() || R->isPtr()) {
      if (E.B == BinOp::Eq)
        return Value::makeInt(*L == *R ? 1 : 0);
      if (E.B == BinOp::Ne)
        return Value::makeInt(*L == *R ? 0 : 1);
      return std::nullopt;
    }
    if (!L->isInt() || !R->isInt())
      return std::nullopt;
    int32_t A = L->asInt(), B = R->asInt();
    auto Wrap = [](int64_t V) {
      return Value::makeInt(static_cast<int32_t>(static_cast<uint32_t>(V)));
    };
    switch (E.B) {
    case BinOp::Add:
      return Wrap(static_cast<int64_t>(A) + B);
    case BinOp::Sub:
      return Wrap(static_cast<int64_t>(A) - B);
    case BinOp::Mul:
      return Wrap(static_cast<int64_t>(A) * B);
    case BinOp::Div:
      return B == 0 ? std::nullopt
                    : std::optional<Value>(Wrap(static_cast<int64_t>(A) / B));
    case BinOp::Mod:
      return B == 0 ? std::nullopt
                    : std::optional<Value>(Wrap(static_cast<int64_t>(A) % B));
    case BinOp::Eq:
      return Value::makeInt(A == B);
    case BinOp::Ne:
      return Value::makeInt(A != B);
    case BinOp::Lt:
      return Value::makeInt(A < B);
    case BinOp::Le:
      return Value::makeInt(A <= B);
    case BinOp::Gt:
      return Value::makeInt(A > B);
    case BinOp::Ge:
      return Value::makeInt(A >= B);
    case BinOp::And:
      return Value::makeInt(A != 0 && B != 0);
    case BinOp::Or:
      return Value::makeInt(A != 0 || B != 0);
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

} // namespace

CsharpminorLang::CsharpminorLang(std::shared_ptr<const csharp::Module> M)
    : Mod(std::move(M)) {}
CsharpminorLang::~CsharpminorLang() = default;

CoreRef CsharpminorLang::initCore(const std::string &Entry,
                                  const std::vector<Value> &Args) const {
  const Function *F = Mod->find(Entry);
  if (!F || F->NumParams != Args.size())
    return nullptr;
  auto C = std::make_shared<CshCore>();
  C->F = F;
  C->EntryArgs = Args;
  pushBlock(C->Kont, F->Body);
  return C;
}

std::vector<LocalStep>
CsharpminorLang::step(const FreeList &FL, const Core &C,
                      const Mem &M) const {
  const auto &Cr = static_cast<const CshCore &>(C);
  const Function &F = *Cr.F;
  std::vector<LocalStep> Out;
  auto abort = [&Out](const std::string &R) {
    Out.push_back(LocalStep::abort("Csharpminor: " + R));
  };

  if (!Cr.Allocated) {
    if (F.NumSlots > FL.size()) {
      abort("frame exceeds free list");
      return Out;
    }
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    for (unsigned I = 0; I < F.NumSlots; ++I) {
      Addr A = FL.at(I);
      Value Init = I < Cr.EntryArgs.size() ? Cr.EntryArgs[I]
                                           : Value::makeUndef();
      S.NextMem.allocFrame(A, Init);
      S.FP.addWrite(A);
    }
    auto N = std::make_shared<CshCore>(Cr);
    N->Allocated = true;
    N->EntryArgs.clear();
    S.Next = std::move(N);
    Out.push_back(std::move(S));
    return Out;
  }

  if (Cr.Kont.empty()) {
    LocalStep S;
    S.M = Msg::ret(Value::makeInt(0));
    S.NextMem = M;
    S.Next = std::make_shared<CshCore>(Cr);
    Out.push_back(std::move(S));
    return Out;
  }

  const KontItem Top = Cr.Kont.back();
  auto popped = [&Cr]() {
    auto N = std::make_shared<CshCore>(Cr);
    N->Kont.pop_back();
    return N;
  };

  if (Top.K == KontItem::Kind::StoreRet) {
    if (!Cr.HasPending) {
      abort("stepped while awaiting return");
      return Out;
    }
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    auto N = popped();
    N->HasPending = false;
    if (Top.HasDst) {
      Addr A = FL.at(Top.DstSlot);
      if (!S.NextMem.store(A, Cr.PendingVal)) {
        abort("bad call-result slot");
        return Out;
      }
      S.FP.addWrite(A);
    }
    S.Next = std::move(N);
    Out.push_back(std::move(S));
    return Out;
  }

  const Stmt &St = *Top.S;
  Footprint FP;
  auto eval = [&](const Expr &E) {
    return evalExpr(E, FL, *Globals, M, FP);
  };
  auto finish = [&](Msg Ms, CoreRef Next, Mem NM) {
    LocalStep S;
    S.M = std::move(Ms);
    S.FP = FP;
    S.NextMem = std::move(NM);
    S.Next = std::move(Next);
    Out.push_back(std::move(S));
  };

  switch (St.K) {
  case Stmt::Kind::Skip:
    finish(Msg::tau(), popped(), M);
    break;
  case Stmt::Kind::Store: {
    auto A = eval(*St.E1);
    auto V = eval(*St.E2);
    if (!A || !A->isPtr() || !V) {
      abort("bad store");
      break;
    }
    Mem NM = M;
    if (!NM.store(A->asPtr(), *V)) {
      abort("store to unallocated address");
      break;
    }
    FP.addWrite(A->asPtr());
    finish(Msg::tau(), popped(), std::move(NM));
    break;
  }
  case Stmt::Kind::If: {
    auto V = eval(*St.E1);
    if (!V || !V->isInt()) {
      abort("bad condition");
      break;
    }
    auto N = popped();
    pushBlock(N->Kont, V->asInt() != 0 ? St.Body : St.Else);
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case Stmt::Kind::While: {
    auto V = eval(*St.E1);
    if (!V || !V->isInt()) {
      abort("bad condition");
      break;
    }
    auto N = std::make_shared<CshCore>(Cr);
    if (V->asInt() != 0)
      pushBlock(N->Kont, St.Body);
    else
      N->Kont.pop_back();
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case Stmt::Kind::Call: {
    std::vector<Value> Args;
    bool Bad = false;
    for (const ExprPtr &AE : St.Args) {
      auto V = eval(*AE);
      if (!V) {
        Bad = true;
        break;
      }
      Args.push_back(*V);
    }
    if (Bad) {
      abort("bad call argument");
      break;
    }
    auto N = popped();
    N->Kont.push_back(
        KontItem{KontItem::Kind::StoreRet, nullptr, St.HasDst, St.DstSlot});
    finish(Msg::extCall(St.Callee, std::move(Args)), std::move(N), M);
    break;
  }
  case Stmt::Kind::Return: {
    Value V = Value::makeInt(0);
    if (St.E1) {
      auto E = eval(*St.E1);
      if (!E) {
        abort("bad return expression");
        break;
      }
      V = *E;
    }
    auto N = std::make_shared<CshCore>(Cr);
    N->Kont.clear();
    finish(Msg::ret(V), std::move(N), M);
    break;
  }
  case Stmt::Kind::Print: {
    auto V = eval(*St.E1);
    if (!V || !V->isInt()) {
      abort("print needs an integer");
      break;
    }
    finish(Msg::event(V->asInt()), popped(), M);
    break;
  }
  }
  return Out;
}

CoreRef CsharpminorLang::applyReturn(const Core &C, const Value &V) const {
  const auto &Cr = static_cast<const CshCore &>(C);
  if (Cr.Kont.empty() || Cr.Kont.back().K != KontItem::Kind::StoreRet)
    return nullptr;
  auto N = std::make_shared<CshCore>(Cr);
  N->PendingVal = V;
  N->HasPending = true;
  return N;
}

unsigned ccc::ir::addCsharpminorModule(
    Program &P, const std::string &Name,
    std::shared_ptr<const csharp::Module> M) {
  GlobalEnv GE;
  for (const auto &G : M->Globals)
    GE.declare(G.first, Value::makeInt(G.second), DataOwner::Client);
  return P.addModule(Name, std::make_unique<CsharpminorLang>(M),
                     std::move(GE));
}
