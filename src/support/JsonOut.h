//===- support/JsonOut.h - Shared machine-readable JSON emission -*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON emission layer shared by the bench binaries and the batch
/// check server: string escaping, the sectioned JsonLog document writer
/// (BENCH_*.json and the server's verdict stream use the same shape, so
/// tools/diff_bench_verdicts.py and tools/check_bench_memory.py read
/// both), and the FNV-1a trace-set content hash the verdict differ
/// hard-compares.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_SUPPORT_JSONOUT_H
#define CASCC_SUPPORT_JSONOUT_H

#include "core/Trace.h"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace ccc {
namespace json {

/// Escapes a string for embedding in a JSON document.
inline std::string str(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  Out += '"';
  return Out;
}

/// A deterministic content hash of a trace set, emitted as a string field
/// so tools/diff_bench_verdicts.py hard-fails when a workload's trace set
/// differs between two runs (numeric state counts are dropped by the
/// differ; this is not).
inline std::string traceSetHash(const TraceSet &Tr) {
  uint64_t H = 1469598103934665603ull; // FNV-1a
  for (char C : Tr.toString()) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

/// Collects raw JSON values under section names and writes them as one
/// machine-readable document (each section becomes an array of entries),
/// so benchmark and server runs can be archived and diffed by tooling.
class Log {
public:
  /// Appends \p RawJson (already valid JSON) to \p Section.
  void add(const std::string &Section, const std::string &RawJson) {
    for (auto &S : Sections) {
      if (S.first == Section) {
        S.second.push_back(RawJson);
        return;
      }
    }
    Sections.push_back({Section, {RawJson}});
  }

  bool write(const std::string &Path) const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return false;
    std::fprintf(F, "%s", toString().c_str());
    std::fclose(F);
    return true;
  }

  /// The document text (the server streams it instead of writing a file).
  std::string toString() const {
    std::string Out = "{\n";
    for (std::size_t I = 0; I < Sections.size(); ++I) {
      Out += "  " + str(Sections[I].first) + ": [\n";
      for (std::size_t J = 0; J < Sections[I].second.size(); ++J) {
        Out += "    " + Sections[I].second[J];
        Out += J + 1 < Sections[I].second.size() ? ",\n" : "\n";
      }
      Out += I + 1 < Sections.size() ? "  ],\n" : "  ]\n";
    }
    Out += "}\n";
    return Out;
  }

private:
  std::vector<std::pair<std::string, std::vector<std::string>>> Sections;
};

} // namespace json
} // namespace ccc

#endif // CASCC_SUPPORT_JSONOUT_H
