//===- tests/SpawnTest.cpp - Dynamic thread creation -----------------------===//
//
// Tests for the thread-spawn extension (the paper's Sec. 8 future work:
// "the spawn step in the operational semantics needs to assign a new F
// to each newly created thread"): spawned threads get disjoint free
// lists, participate in scheduling, race detection, and the
// preemptive/non-preemptive equivalence.
//
//===----------------------------------------------------------------------===//

#include "cimp/CImpLang.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ccc;

namespace {
Program spawnProgram(const std::string &Src,
                     std::vector<std::string> Entries = {"main"}) {
  Program P;
  cimp::addCImpModule(P, "m", Src);
  for (auto &E : Entries)
    P.addThread(E);
  P.link();
  return P;
}
} // namespace

TEST(Spawn, SpawnedThreadRuns) {
  Program P = spawnProgram(R"(
    child() { print(2); }
    main() { print(1); spawn child(); print(3); }
  )");
  TraceSet T = preemptiveTraces(P);
  EXPECT_TRUE(T.contains(Trace{{1, 3, 2}, TraceEnd::Done}));
  EXPECT_TRUE(T.contains(Trace{{1, 2, 3}, TraceEnd::Done}));
  // The child can only run after the spawn: 2 never precedes 1.
  for (const Trace &Tr : T.traces()) {
    if (!Tr.Events.empty()) {
      EXPECT_EQ(Tr.Events[0], 1) << Tr.toString();
    }
  }
}

TEST(Spawn, ArgumentsArePassed) {
  Program P = spawnProgram(R"(
    child(v) { print(v * 10); }
    main() { spawn child(4); }
  )");
  TraceSet T = preemptiveTraces(P);
  EXPECT_TRUE(T.contains(Trace{{40}, TraceEnd::Done}));
}

TEST(Spawn, UnknownEntryAborts) {
  Program P = spawnProgram("main() { spawn nosuch(); }");
  std::string Reason;
  EXPECT_FALSE(isSafe(P, {}, &Reason));
  EXPECT_NE(Reason.find("spawn"), std::string::npos);
}

TEST(Spawn, SpawnedThreadsHaveDisjointLocals) {
  // Two spawned workers run function-local loops; their register locals
  // and (if any) frame cells never interfere.
  Program P = spawnProgram(R"(
    worker(k) {
      i := 0;
      s := 0;
      while (i < 3) { s := s + k; i := i + 1; }
      print(s);
    }
    main() { spawn worker(1); spawn worker(100); }
  )");
  EXPECT_TRUE(isDRF(P));
  TraceSet T = preemptiveTraces(P);
  for (const Trace &Tr : T.traces()) {
    ASSERT_EQ(Tr.End, TraceEnd::Done);
    std::vector<int64_t> Sorted = Tr.Events;
    std::sort(Sorted.begin(), Sorted.end());
    EXPECT_EQ(Sorted, (std::vector<int64_t>{3, 300})) << Tr.toString();
  }
}

TEST(Spawn, RacesWithSpawnerAreDetected) {
  Program P = spawnProgram(R"(
    global x = 0;
    child() { [x] := 1; }
    main() { spawn child(); [x] := 2; }
  )");
  EXPECT_FALSE(isDRF(P));
  EXPECT_FALSE(isNPDRF(P));
}

TEST(Spawn, LockSynchronizedSpawnIsDRF) {
  Program P;
  cimp::addCImpModule(P, "m", R"(
    global x = 0;
    child() { lock(); v := [x]; [x] := v + 1; unlock(); print(v); }
    main() { spawn child(); lock(); v := [x]; [x] := v + 1; unlock(); print(v); }
  )");
  sync::addGammaLock(P);
  P.addThread("main");
  P.link();
  EXPECT_TRUE(isDRF(P));
  TraceSet T = preemptiveTraces(P);
  EXPECT_FALSE(T.hasAbort());
  for (const Trace &Tr : T.traces()) {
    if (Tr.End != TraceEnd::Done)
      continue;
    std::vector<int64_t> Sorted = Tr.Events;
    std::sort(Sorted.begin(), Sorted.end());
    EXPECT_EQ(Sorted, (std::vector<int64_t>{0, 1})) << Tr.toString();
  }
}

TEST(Spawn, PreemptiveEqualsNonPreemptiveWithSpawn) {
  Program P = spawnProgram(R"(
    global x = 0;
    child() { < v := [x]; [x] := v + 5; > print(5); }
    main() { spawn child(); < v := [x]; [x] := v + 2; > print(2); }
  )");
  ASSERT_TRUE(isDRF(P));
  TraceSet Pre = preemptiveTraces(P);
  TraceSet Np = nonPreemptiveTraces(P);
  RefineResult R = equivTraces(Pre, Np);
  EXPECT_TRUE(R.Holds) << "cex: " << R.CounterExample << "\npre "
                       << Pre.toString() << "\nnp " << Np.toString();
}

TEST(Spawn, GrandchildrenWork) {
  Program P = spawnProgram(R"(
    grandchild() { print(3); }
    child() { print(2); spawn grandchild(); }
    main() { print(1); spawn child(); }
  )");
  TraceSet T = preemptiveTraces(P);
  // Order respects the spawn chain: 1 before 2 before 3.
  for (const Trace &Tr : T.traces()) {
    ASSERT_EQ(Tr.End, TraceEnd::Done);
    EXPECT_EQ(Tr.Events, (std::vector<int64_t>{1, 2, 3}));
  }
}
