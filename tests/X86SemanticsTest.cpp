//===- tests/X86SemanticsTest.cpp - Instruction-level x86 tests ------------===//
//
// Fine-grained unit tests of the x86 machines: ALU semantics (including
// 32-bit wrap-around), every condition code, cmpxchg success/failure,
// store-buffer FIFO order, buffer snooping, and drain discipline.
//
//===----------------------------------------------------------------------===//

#include "core/Semantics.h"
#include "x86/X86Lang.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::x86;

namespace {

Trace doneTrace(std::vector<int64_t> Ev) {
  return Trace{std::move(Ev), TraceEnd::Done};
}

/// Runs a single-threaded function under the given model and returns its
/// unique trace events.
TraceSet runAsm(const std::string &Body, MemModel Model) {
  Program P;
  addAsmModule(P, "m", Body, Model);
  P.addThread("main");
  P.link();
  return preemptiveTraces(P);
}

} // namespace

TEST(X86Alu, WrapAroundArithmetic) {
  TraceSet T = runAsm(R"(
    .entry main 0 0
    main:
            movl $2147483647, %eax
            addl $1, %eax
            printl %eax
            movl $0, %ebx
            subl $1, %ebx
            printl %ebx
            retl
  )",
                      MemModel::SC);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({-2147483648LL, -1})));
}

TEST(X86Alu, ShiftsAndBitwise) {
  TraceSet T = runAsm(R"(
    .entry main 0 0
    main:
            movl $5, %eax
            shll $3, %eax
            printl %eax
            movl $16, %ebx
            negl %ebx
            sarl $2, %ebx
            printl %ebx
            movl $12, %ecx
            andl $10, %ecx
            printl %ecx
            movl $12, %edx
            orl $3, %edx
            printl %edx
            movl $12, %esi
            xorl $10, %esi
            printl %esi
            retl
  )",
                      MemModel::SC);
  EXPECT_TRUE(T.contains(doneTrace({40, -4, 8, 15, 6})));
}

TEST(X86Alu, NegNotDiv) {
  TraceSet T = runAsm(R"(
    .entry main 0 0
    main:
            movl $7, %eax
            negl %eax
            printl %eax
            movl $0, %ebx
            notl %ebx
            printl %ebx
            movl $17, %ecx
            negl %ecx
            divl $5, %ecx
            printl %ecx
            retl
  )",
                      MemModel::SC);
  // C-style truncation: -17 / 5 == -3.
  EXPECT_TRUE(T.contains(doneTrace({-7, -1, -3})));
}

namespace {
struct CondCase {
  const char *Mnemonic;
  int32_t Lhs, Rhs; // cmpl $Rhs, reg(Lhs)
  bool Taken;
};
class CondTest : public ::testing::TestWithParam<CondCase> {};
} // namespace

TEST_P(CondTest, JccTakesTheRightBranch) {
  const CondCase &C = GetParam();
  std::string MovLhs = C.Lhs >= 0
      ? "movl $" + std::to_string(C.Lhs) + ", %eax"
      : "movl $" + std::to_string(-static_cast<int64_t>(C.Lhs)) +
            ", %eax\n            negl %eax";
  std::string Src = std::string(R"(
    .entry main 0 0
    main:
            )") + MovLhs + R"(
            cmpl $)" + std::to_string(C.Rhs) + R"(, %eax
            )" + C.Mnemonic + R"( yes
            printl $0
            retl
    yes:
            printl $1
            retl
  )";
  TraceSet T = runAsm(Src, MemModel::SC);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({C.Taken ? 1 : 0})))
      << C.Mnemonic << " " << C.Lhs << " vs " << C.Rhs;
}

INSTANTIATE_TEST_SUITE_P(
    AllConds, CondTest,
    ::testing::Values(CondCase{"je", 3, 3, true},
                      CondCase{"je", 3, 4, false},
                      CondCase{"jne", 3, 4, true},
                      CondCase{"jne", 4, 4, false},
                      CondCase{"jl", -1, 0, true},
                      CondCase{"jl", 0, 0, false},
                      CondCase{"jle", 0, 0, true},
                      CondCase{"jle", 1, 0, false},
                      CondCase{"jg", 5, 4, true},
                      CondCase{"jg", 4, 5, false},
                      CondCase{"jge", 4, 4, true},
                      CondCase{"jge", 3, 4, false}));

TEST(X86Cmpxchg, SuccessSwapsAndSetsZF) {
  TraceSet T = runAsm(R"(
    .data g 10
    .entry main 0 0
    main:
            movl $10, %eax
            movl $77, %ebx
            movl $g, %ecx
            lock cmpxchgl %ebx, (%ecx)
            jne fail
            movl g, %edx
            printl %edx
            retl
    fail:
            printl $111
            retl
  )",
                      MemModel::SC);
  EXPECT_TRUE(T.contains(doneTrace({77})));
}

TEST(X86Cmpxchg, FailureLoadsOldValueIntoEax) {
  TraceSet T = runAsm(R"(
    .data g 10
    .entry main 0 0
    main:
            movl $99, %eax
            movl $77, %ebx
            movl $g, %ecx
            lock cmpxchgl %ebx, (%ecx)
            je swapped
            printl %eax
            movl g, %edx
            printl %edx
            retl
    swapped:
            printl $111
            retl
  )",
                      MemModel::SC);
  // EAX receives the memory value 10; g is unchanged.
  EXPECT_TRUE(T.contains(doneTrace({10, 10})));
}

TEST(X86Tso, BufferedStoresSnoopInOrder) {
  // A thread sees its own latest buffered store.
  TraceSet T = runAsm(R"(
    .data g 0
    .entry main 0 0
    main:
            movl $1, g
            movl $2, g
            movl g, %eax
            printl %eax
            retl
  )",
                      MemModel::TSO);
  for (const Trace &Tr : T.traces())
    EXPECT_EQ(Tr.Events, (std::vector<int64_t>{2})) << Tr.toString();
}

TEST(X86Tso, FlushesAreFifo) {
  // Another thread can observe g1 updated while g2 still old — but never
  // g2 new with g1 old (FIFO order).
  Program P;
  addAsmModule(P, "m", R"(
    .data g1 0
    .data g2 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $1, g1
            movl $1, g2
            retl
    t2:
            movl g2, %eax
            movl g1, %ebx
            printl %eax
            printl %ebx
            retl
  )",
                MemModel::TSO);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  TraceSet T = preemptiveTraces(P);
  // Forbidden: g2 == 1 observed while the earlier g1 store not visible.
  EXPECT_FALSE(T.contains(doneTrace({1, 0})));
  EXPECT_TRUE(T.contains(doneTrace({0, 0})));
  EXPECT_TRUE(T.contains(doneTrace({1, 1})));
}

TEST(X86Tso, LoadsMayOvertakePendingStoresOfOtherCells) {
  // The weak behaviour the static robustness pass (analysis/TsoRobust.h)
  // hunts: a load of a *different* cell executes while the thread's own
  // earlier store is still buffered. Under TSO both threads can read 0;
  // under SC at least one store is visible.
  auto build = [](MemModel Model) {
    Program P;
    addAsmModule(P, "m", R"(
      .data x 0
      .data y 0
      .entry t1 0 0
      .entry t2 0 0
      t1:
              movl $1, x
              movl y, %eax
              printl %eax
              retl
      t2:
              movl $1, y
              movl x, %ebx
              printl %ebx
              retl
    )",
                  Model);
    P.addThread("t1");
    P.addThread("t2");
    P.link();
    return preemptiveTraces(P);
  };
  EXPECT_TRUE(build(MemModel::TSO).contains(doneTrace({0, 0})));
  EXPECT_FALSE(build(MemModel::SC).contains(doneTrace({0, 0})));
}

TEST(X86Tso, MfenceDrainsBeforeExecuting) {
  // mfence can only execute with an empty buffer, so a load after it
  // never overtakes the earlier store: both-zero is gone. This is the
  // drain point the robustness pass credits with a fence certificate.
  Program P;
  addAsmModule(P, "m", R"(
    .data x 0
    .data y 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $1, x
            mfence
            movl y, %eax
            printl %eax
            retl
    t2:
            movl $1, y
            mfence
            movl x, %ebx
            printl %ebx
            retl
  )",
                MemModel::TSO);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  EXPECT_FALSE(preemptiveTraces(P).contains(doneTrace({0, 0})));
}

TEST(X86Tso, LockCmpxchgDrainsBeforeExecuting) {
  // A lock-prefixed cmpxchg also drains the buffer *before* its own
  // atomic access: once its write to g2 is visible, the thread's earlier
  // plain store to g1 must be too (the second drain point the pass
  // credits).
  Program P;
  addAsmModule(P, "m", R"(
    .data g1 0
    .data g2 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $1, g1
            movl $0, %eax
            movl $1, %edx
            lock cmpxchgl %edx, g2
            retl
    t2:
            movl g2, %eax
            movl g1, %ebx
            printl %eax
            printl %ebx
            retl
  )",
                MemModel::TSO);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  TraceSet T = preemptiveTraces(P);
  // Forbidden: cmpxchg's write visible while the earlier store is not.
  EXPECT_FALSE(T.contains(doneTrace({1, 0})));
  EXPECT_TRUE(T.contains(doneTrace({1, 1})));
  EXPECT_TRUE(T.contains(doneTrace({0, 0})));
}

TEST(X86Tso, RetDrainsTheBuffer) {
  // The callee's buffered store must be globally visible once the call
  // returns (ret requires an empty buffer).
  Program P;
  addAsmModule(P, "m", R"(
    .data g 0
    .entry main 0 0
    .entry setg 0 0
    main:
            call setg
            movl g, %eax
            printl %eax
            retl
    setg:
            movl $5, g
            retl
  )",
                MemModel::TSO);
  P.addThread("main");
  P.link();
  TraceSet T = preemptiveTraces(P);
  for (const Trace &Tr : T.traces())
    EXPECT_EQ(Tr.Events, (std::vector<int64_t>{5})) << Tr.toString();
}

TEST(X86Errors, DivisionByZeroAborts) {
  Program P;
  addAsmModule(P, "m", R"(
    .entry main 0 0
    main:
            movl $4, %eax
            divl $0, %eax
            retl
  )",
                MemModel::SC);
  P.addThread("main");
  P.link();
  std::string Reason;
  EXPECT_FALSE(isSafe(P, {}, &Reason));
  EXPECT_NE(Reason.find("division"), std::string::npos);
}

TEST(X86Errors, LoadFromIntegerAddressAborts) {
  Program P;
  addAsmModule(P, "m", R"(
    .entry main 0 0
    main:
            movl $123, %ecx
            movl (%ecx), %eax
            retl
  )",
                MemModel::SC);
  P.addThread("main");
  P.link();
  EXPECT_FALSE(isSafe(P));
}
