//===- ir/Ops.cpp - Shared operators of the compiler IRs ------------------===//

#include "ir/Ops.h"

using namespace ccc;
using namespace ccc::ir;

unsigned ccc::ir::operArity(Oper O) {
  switch (O) {
  case Oper::Intconst:
  case Oper::Addrglobal:
    return 0;
  case Oper::Move:
  case Oper::Neg:
  case Oper::BoolNot:
  case Oper::AddImm:
  case Oper::MulImm:
  case Oper::ShlImm:
  case Oper::SarImm:
  case Oper::CmpImm:
    return 1;
  default:
    return 2;
  }
}

const char *ccc::ir::operName(Oper O) {
  switch (O) {
  case Oper::Intconst:
    return "intconst";
  case Oper::Addrglobal:
    return "addrglobal";
  case Oper::Move:
    return "move";
  case Oper::Neg:
    return "neg";
  case Oper::BoolNot:
    return "boolnot";
  case Oper::AddImm:
    return "addimm";
  case Oper::MulImm:
    return "mulimm";
  case Oper::ShlImm:
    return "shlimm";
  case Oper::SarImm:
    return "sarimm";
  case Oper::CmpImm:
    return "cmpimm";
  case Oper::Add:
    return "add";
  case Oper::Sub:
    return "sub";
  case Oper::Mul:
    return "mul";
  case Oper::Div:
    return "div";
  case Oper::Mod:
    return "mod";
  case Oper::And:
    return "and";
  case Oper::Or:
    return "or";
  case Oper::Xor:
    return "xor";
  case Oper::Cmp:
    return "cmp";
  }
  return "?";
}

const char *ccc::ir::cmpName(Cmp C) {
  switch (C) {
  case Cmp::Eq:
    return "eq";
  case Cmp::Ne:
    return "ne";
  case Cmp::Lt:
    return "lt";
  case Cmp::Le:
    return "le";
  case Cmp::Gt:
    return "gt";
  case Cmp::Ge:
    return "ge";
  }
  return "?";
}

Cmp ccc::ir::cmpSwap(Cmp C) {
  switch (C) {
  case Cmp::Lt:
    return Cmp::Gt;
  case Cmp::Le:
    return Cmp::Ge;
  case Cmp::Gt:
    return Cmp::Lt;
  case Cmp::Ge:
    return Cmp::Le;
  default:
    return C;
  }
}

Cmp ccc::ir::cmpNegate(Cmp C) {
  switch (C) {
  case Cmp::Eq:
    return Cmp::Ne;
  case Cmp::Ne:
    return Cmp::Eq;
  case Cmp::Lt:
    return Cmp::Ge;
  case Cmp::Le:
    return Cmp::Gt;
  case Cmp::Gt:
    return Cmp::Le;
  case Cmp::Ge:
    return Cmp::Lt;
  }
  return C;
}

std::optional<bool> ccc::ir::evalCmp(Cmp C, const Value &A, const Value &B) {
  if (A.isPtr() || B.isPtr()) {
    if (C == Cmp::Eq)
      return A == B;
    if (C == Cmp::Ne)
      return !(A == B);
    return std::nullopt;
  }
  if (!A.isInt() || !B.isInt())
    return std::nullopt;
  int32_t X = A.asInt(), Y = B.asInt();
  switch (C) {
  case Cmp::Eq:
    return X == Y;
  case Cmp::Ne:
    return X != Y;
  case Cmp::Lt:
    return X < Y;
  case Cmp::Le:
    return X <= Y;
  case Cmp::Gt:
    return X > Y;
  case Cmp::Ge:
    return X >= Y;
  }
  return std::nullopt;
}

std::optional<Value> ccc::ir::evalOper(Oper O, Cmp C, int32_t Imm,
                                       Addr GlobalAddr, const Value &A,
                                       const Value &B) {
  auto Wrap = [](int64_t V) {
    return Value::makeInt(static_cast<int32_t>(static_cast<uint32_t>(V)));
  };
  switch (O) {
  case Oper::Intconst:
    return Value::makeInt(Imm);
  case Oper::Addrglobal:
    return Value::makePtr(GlobalAddr);
  case Oper::Move:
    return A;
  case Oper::Neg:
    if (!A.isInt())
      return std::nullopt;
    return Wrap(-static_cast<int64_t>(A.asInt()));
  case Oper::BoolNot:
    if (!A.isInt())
      return std::nullopt;
    return Value::makeInt(A.asInt() == 0 ? 1 : 0);
  case Oper::AddImm:
    if (A.isPtr())
      return Value::makePtr(A.asPtr() + static_cast<Addr>(Imm));
    if (!A.isInt())
      return std::nullopt;
    return Wrap(static_cast<int64_t>(A.asInt()) + Imm);
  case Oper::MulImm:
    if (!A.isInt())
      return std::nullopt;
    return Wrap(static_cast<int64_t>(A.asInt()) * Imm);
  case Oper::ShlImm:
    if (!A.isInt())
      return std::nullopt;
    return Wrap(static_cast<int64_t>(
        static_cast<uint32_t>(A.asInt()) << (Imm & 31)));
  case Oper::SarImm:
    if (!A.isInt())
      return std::nullopt;
    return Value::makeInt(A.asInt() >> (Imm & 31));
  case Oper::CmpImm: {
    auto R = evalCmp(C, A, Value::makeInt(Imm));
    if (!R)
      return std::nullopt;
    return Value::makeInt(*R ? 1 : 0);
  }
  case Oper::Cmp: {
    auto R = evalCmp(C, A, B);
    if (!R)
      return std::nullopt;
    return Value::makeInt(*R ? 1 : 0);
  }
  case Oper::Add:
    if (A.isPtr() && B.isInt())
      return Value::makePtr(A.asPtr() + static_cast<Addr>(B.asInt()));
    if (A.isInt() && B.isPtr())
      return Value::makePtr(B.asPtr() + static_cast<Addr>(A.asInt()));
    if (!A.isInt() || !B.isInt())
      return std::nullopt;
    return Wrap(static_cast<int64_t>(A.asInt()) + B.asInt());
  case Oper::Sub:
  case Oper::Mul:
  case Oper::Div:
  case Oper::Mod:
  case Oper::And:
  case Oper::Or:
  case Oper::Xor: {
    if (!A.isInt() || !B.isInt())
      return std::nullopt;
    int64_t X = A.asInt(), Y = B.asInt();
    switch (O) {
    case Oper::Sub:
      return Wrap(X - Y);
    case Oper::Mul:
      return Wrap(X * Y);
    case Oper::Div:
      if (Y == 0)
        return std::nullopt;
      return Wrap(X / Y);
    case Oper::Mod:
      if (Y == 0)
        return std::nullopt;
      return Wrap(X % Y);
    case Oper::And:
      return Wrap(X & Y);
    case Oper::Or:
      return Wrap(X | Y);
    case Oper::Xor:
      return Wrap(X ^ Y);
    default:
      return std::nullopt;
    }
  }
  }
  return std::nullopt;
}
