//===- tests/ObjectRefinementTest.cpp - General concurrent objects ---------===//
//
// Sec. 2.4 of the paper notes the extended framework "also applies in
// more general cases when pi_o is a racy implementation of a general
// concurrent object such as a stack or a queue". This suite instantiates
// that claim with two objects beyond the lock:
//  - a fetch-and-increment counter (CAS-loop implementation), and
//  - a bounded LIFO stack (lock-free push/pop over a CAS'd top index).
// Each has an atomic CImp specification and a racy x86 implementation;
// clients using the implementation under TSO refine' clients using the
// specification under SC, and all races are confined to object data.
//
//===----------------------------------------------------------------------===//

#include "cimp/CImpLang.h"
#include "core/Semantics.h"
#include "x86/X86Lang.h"

#include <gtest/gtest.h>

using namespace ccc;

namespace {

// --------------------------------------------------------------------------
// Fetch-and-increment counter object.
// --------------------------------------------------------------------------

const char *FaiSpec = R"(
  global C = 0;
  fai() {
    < v := [C]; [C] := v + 1; >
    return v;
  }
)";

// CAS-loop implementation; the initial unsynchronized read races benignly
// with other threads' cmpxchg writes.
const char *FaiImpl = R"(
  .data C 0
  .entry fai 0 0
  fai:
          movl $C, %ecx
  retry:
          movl (%ecx), %eax
          movl %eax, %ebx
          addl $1, %ebx
          lock cmpxchgl %ebx, (%ecx)
          jne retry
          retl
)";

Program faiSpecClients(unsigned Threads) {
  Program P;
  cimp::addCImpModule(P, "client", R"(
    use() { r := 0; r := fai(); print(r); }
  )");
  cimp::addCImpModule(P, "obj", FaiSpec, /*ObjectMode=*/true);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("use");
  P.link();
  return P;
}

Program faiImplClients(x86::MemModel Model, unsigned Threads) {
  Program P;
  cimp::addCImpModule(P, "client", R"(
    use() { r := 0; r := fai(); print(r); }
  )");
  x86::addAsmModule(P, "obj", FaiImpl, Model, /*ObjectMode=*/true);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("use");
  P.link();
  return P;
}

} // namespace

TEST(FaiObject, SpecClientsAreDRF) {
  EXPECT_TRUE(isDRF(faiSpecClients(2)));
}

TEST(FaiObject, SpecHandsOutDistinctTickets) {
  TraceSet T = preemptiveTraces(faiSpecClients(2));
  for (const Trace &Tr : T.traces()) {
    ASSERT_EQ(Tr.End, TraceEnd::Done);
    std::vector<int64_t> S = Tr.Events;
    std::sort(S.begin(), S.end());
    EXPECT_EQ(S, (std::vector<int64_t>{0, 1})) << Tr.toString();
  }
}

TEST(FaiObject, ImplRefinesSpecUnderTSO) {
  TraceSet Impl =
      preemptiveTraces(faiImplClients(x86::MemModel::TSO, 2));
  TraceSet Spec = preemptiveTraces(faiSpecClients(2));
  RefineResult R = refinesTraces(Impl, Spec, /*TermInsensitive=*/true);
  EXPECT_TRUE(R.Holds) << R.CounterExample;
}

TEST(FaiObject, ImplRacesAreConfinedToObjectData) {
  Program P = faiImplClients(x86::MemModel::SC, 2);
  Explorer<World> E;
  E.build(World::load(P));
  auto Races = E.findRacesConfinedTo(P.objectAddrs());
  ASSERT_FALSE(Races.empty()); // the CAS loop's read is racy by design
  for (const RaceWitness &W : Races)
    EXPECT_TRUE(W.Confined) << W.FP1.FP.toString() << " vs "
                            << W.FP2.FP.toString();
}

namespace {

// --------------------------------------------------------------------------
// Bounded LIFO stack object: slots s0,s1 plus a top index.
// --------------------------------------------------------------------------

const char *StackSpec = R"(
  global top = 0;
  global s0 = 0;
  global s1 = 0;
  push(v) {
    r := 0 - 1;
    <
      t := [top];
      if (t == 0) { [s0] := v; [top] := 1; r := 0; }
      if (t == 1) { [s1] := v; [top] := 2; r := 0; }
    >
    return r;
  }
  pop() {
    <
      t := [top];
      r := 0 - 1;
      if (t == 1) { r := [s0]; [top] := 0; }
      if (t == 2) { r := [s1]; [top] := 1; }
    >
    return r;
  }
)";

Program stackClients(bool UseSpecTwice) {
  (void)UseSpecTwice;
  Program P;
  cimp::addCImpModule(P, "client", R"(
    producer() { r := 0; r := push(7); r := push(9); }
    consumer() {
      got := 0;
      while (got < 2) {
        v := 0;
        v := pop();
        if (v != 0 - 1) { print(v); got := got + 1; }
      }
    }
  )");
  cimp::addCImpModule(P, "obj", StackSpec, /*ObjectMode=*/true);
  P.addThread("producer");
  P.addThread("consumer");
  P.link();
  return P;
}

} // namespace

TEST(StackObject, SpecClientsAreDRF) { EXPECT_TRUE(isDRF(stackClients(true))); }

TEST(StackObject, LifoOrderRespected) {
  TraceSet T = preemptiveTraces(stackClients(true));
  EXPECT_FALSE(T.hasAbort());
  bool SawDone = false;
  for (const Trace &Tr : T.traces()) {
    if (Tr.End != TraceEnd::Done)
      continue;
    SawDone = true;
    ASSERT_EQ(Tr.Events.size(), 2u);
    // Possible consumptions: pop between pushes gives 7 then 9; pops
    // after both pushes give 9 then 7. Never 9 twice or 7 twice.
    bool Ok = (Tr.Events == std::vector<int64_t>{7, 9}) ||
              (Tr.Events == std::vector<int64_t>{9, 7});
    EXPECT_TRUE(Ok) << Tr.toString();
  }
  EXPECT_TRUE(SawDone);
}

TEST(StackObject, PreemptiveEqualsNonPreemptive) {
  Program P = stackClients(true);
  ASSERT_TRUE(isDRF(P));
  TraceSet Pre = preemptiveTraces(P);
  TraceSet Np = nonPreemptiveTraces(P);
  RefineResult R = equivTraces(Pre, Np);
  EXPECT_TRUE(R.Holds) << R.CounterExample;
}
