//===- x86/X86Asm.h - The x86 assembly subset --------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The x86 assembly subset used as CASCompCert's target (Sec. 7): enough
/// of 32-bit x86 (AT&T syntax) to express compiled Clight clients and the
/// hand-written TTAS lock of Fig. 10(b): moves, ALU ops, compare/branch,
/// setcc, call/ret, lock-prefixed cmpxchg and mfence.
///
/// Model simplifications (documented in DESIGN.md):
///  - memory is word-addressed: displacements count 32-bit cells;
///  - `divl src, dst` is a pseudo-instruction avoiding the EAX:EDX pair;
///  - `printl op` models a call to the runtime I/O intrinsic as an
///    observable event (all languages of the pipeline treat print this
///    way, so events line up across compilation).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_X86_X86ASM_H
#define CASCC_X86_X86ASM_H

#include "mem/Addr.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ccc {
namespace x86 {

/// General-purpose registers.
enum class Reg : uint8_t { EAX, EBX, ECX, EDX, ESI, EDI, EBP, ESP };
constexpr unsigned NumRegs = 8;

const char *regName(Reg R);
std::optional<Reg> regByName(const std::string &Name);

/// Condition codes.
enum class Cond : uint8_t { E, NE, L, LE, G, GE };

const char *condSuffix(Cond C);

/// An instruction operand.
struct Operand {
  enum class Kind {
    Imm,       ///< $5
    GlobalImm, ///< $L — the address of global L as an immediate
    Reg,       ///< %eax
    MemBase,   ///< disp(%reg)
    MemGlobal, ///< L — direct global memory operand
  };

  Kind K = Kind::Imm;
  int32_t Imm = 0;
  Reg R = Reg::EAX;
  int32_t Disp = 0;
  std::string Global;

  static Operand imm(int32_t V) {
    Operand O;
    O.K = Kind::Imm;
    O.Imm = V;
    return O;
  }
  static Operand globalImm(std::string Name) {
    Operand O;
    O.K = Kind::GlobalImm;
    O.Global = std::move(Name);
    return O;
  }
  static Operand reg(Reg R) {
    Operand O;
    O.K = Kind::Reg;
    O.R = R;
    return O;
  }
  static Operand memBase(Reg Base, int32_t Disp = 0) {
    Operand O;
    O.K = Kind::MemBase;
    O.R = Base;
    O.Disp = Disp;
    return O;
  }
  static Operand memGlobal(std::string Name) {
    Operand O;
    O.K = Kind::MemGlobal;
    O.Global = std::move(Name);
    return O;
  }

  bool isMem() const { return K == Kind::MemBase || K == Kind::MemGlobal; }
  std::string toString() const;
};

/// One instruction.
struct Instr {
  enum class Kind {
    Mov,         ///< movl src, dst
    Add,         ///< addl src, dst
    Sub,         ///< subl src, dst
    Imul,        ///< imull src, dst
    Div,         ///< divl src, dst (pseudo; signed)
    And,         ///< andl src, dst
    Or,          ///< orl src, dst
    Xor,         ///< xorl src, dst
    Shl,         ///< shll $k, dst
    Sar,         ///< sarl $k, dst
    Neg,         ///< negl dst
    Not,         ///< notl dst
    Cmp,         ///< cmpl src, dst — flags from dst - src
    Setcc,       ///< setcc dst (0/1 into a register)
    Jmp,         ///< jmp label
    Jcc,         ///< jcc label
    Call,        ///< call name (external-call message)
    TailCall,    ///< tcall name (pseudo: tail-call message)
    Ret,         ///< retl
    LockCmpxchg, ///< lock cmpxchgl src, mem
    Mfence,      ///< mfence
    Print,       ///< printl op (observable event)
    Label,       ///< label: (pseudo)
  };

  Kind K = Kind::Label;
  Operand Src, Dst;
  Cond CC = Cond::E;
  std::string Name; // label / callee
  std::string toString() const;
};

/// Information about a function entry point.
struct EntryInfo {
  unsigned PCIndex = 0;
  uint32_t FrameSize = 0;
  unsigned Arity = 0;
  /// Frame-layout extent: one past the largest non-negative esp-relative
  /// displacement the entry's reachable code addresses directly (at
  /// least FrameSize). Filled by the parser; analyses use it to bound
  /// which cells of the entry's fixed frame region the code may treat
  /// as its own even when the declared frame is smaller. Zero when the
  /// module was built without the parser (the declared size then stands
  /// alone).
  uint32_t FrameExtent = 0;
};

/// An x86 module: one flat code stream with labels, entry points, data
/// declarations, and arities of external callees.
struct Module {
  std::vector<Instr> Code;
  std::map<std::string, unsigned> Labels;
  std::map<std::string, EntryInfo> Entries;
  std::map<std::string, unsigned> ExternArity;
  /// Declared globals with initial values (like CImp's globals).
  std::vector<std::pair<std::string, int32_t>> Globals;

  std::optional<unsigned> label(const std::string &L) const {
    auto It = Labels.find(L);
    if (It == Labels.end())
      return std::nullopt;
    return It->second;
  }

  /// Arity of a callee: entries of this module or declared externs.
  std::optional<unsigned> arityOf(const std::string &Callee) const {
    if (auto It = Entries.find(Callee); It != Entries.end())
      return It->second.Arity;
    if (auto It = ExternArity.find(Callee); It != ExternArity.end())
      return It->second;
    return std::nullopt;
  }

  std::string toString() const;
};

//===----------------------------------------------------------------------===//
// Static metadata used by the analyses (analysis/TsoRobust.h): control-flow
// successors and the memory effects of each instruction, exposed here so
// every client agrees with the executable semantics of X86Lang.cpp.
//===----------------------------------------------------------------------===//

/// One memory operand of an instruction together with its effect. A
/// read-modify-write operand (ALU with memory destination, cmpxchg)
/// appears once with both IsLoad and IsStore set.
struct MemEffect {
  const Operand *Op = nullptr;
  bool IsLoad = false;
  bool IsStore = false;
  /// True for lock-prefixed accesses: they execute atomically against
  /// drained buffers and never enter the store buffer.
  bool Locked = false;
};

/// The memory operands of \p I, in evaluation order.
std::vector<MemEffect> memEffects(const Instr &I);

/// True when the instruction drains the TSO store buffer *before*
/// executing (mfence and lock-prefixed instructions). These are the fence
/// points the robustness analysis credits.
bool drainsStoreBuffer(const Instr &I);

/// True when control crosses the module boundary (call / tcall / ret).
/// The executable model also drains the buffer at these points (a
/// documented simplification of real x86-TSO, where neither call nor ret
/// fences), so analyses must NOT credit them as fences if their verdicts
/// are to stay meaningful for the hardware the model abstracts.
bool crossesModuleBoundary(const Instr &I);

/// Successor PC indices of the instruction at \p PC within \p M:
/// fall-through and/or branch target. Empty for ret and tcall (control
/// leaves the module). Calls fall through to their return point.
std::vector<unsigned> successors(const Module &M, unsigned PC);

//===----------------------------------------------------------------------===//
// Program rewriting (analysis/FenceSynth.h): instruction insertion with
// PC remapping, used to apply synthesized fence placements.
//===----------------------------------------------------------------------===//

/// Returns a copy of \p M with an `mfence` inserted immediately *before*
/// each PC in \p BeforePCs (duplicates allowed, any order; one fence per
/// distinct PC). Labels, entry PCIndexes and branch structure are
/// remapped so the control-flow graph of the original instructions is
/// preserved exactly — every path that executed the instruction at an
/// original PC p now drains the store buffer first.
///
/// Insertion points must name non-Label instructions: labels are the
/// only branch-target anchors, so a fence in front of one would be
/// skipped by jumps to it (fall-through-only coverage), breaking the
/// "every path crosses the fence" guarantee the caller relies on.
/// Frame-layout extents (EntryInfo::FrameExtent) are recomputed over the
/// rewritten successor graph via x86::recomputeFrameExtents.
std::shared_ptr<Module> insertFences(const Module &M,
                                     const std::vector<unsigned> &BeforePCs);

/// Recomputes every entry's EntryInfo::FrameExtent (one past the largest
/// non-negative esp-relative displacement its reachable code addresses,
/// at least the declared frame size) by a BFS over x86::successors.
/// Shared by the parser's post-pass and the rewrite layer, so inserted
/// instructions can never leave a stale extent behind.
void recomputeFrameExtents(Module &M);

} // namespace x86
} // namespace ccc

#endif // CASCC_X86_X86ASM_H
