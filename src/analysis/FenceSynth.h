//===- analysis/FenceSynth.h - Static minimal-fence synthesis ---*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static fence-placement synthesis: the repair pass that turns the
/// robustness certifier's NotRobust diagnosis into a certified-Robust
/// module, under whatever reorder table the module's declared memory
/// model induces. Where the certifier names the disease — a plain store
/// whose buffered value survives to a triangular load, an observable
/// event, or the module boundary, or (under a LoadsDefer model) a
/// deferable load still pending across a later shared access — FenceSynth
/// computes where `mfence` instructions must land so that *every*
/// fence-free path from a witnessed access to one of its violation
/// points crosses an inserted drain, and nothing else pays: accesses
/// already discharged by a FenceCert (including dependency certificates),
/// and accesses whose paths diverge before the next shared access, get no
/// fence. An mfence is a full barrier in every buffered model — it
/// drains the store buffer and completion-forces pending loads — so one
/// placement primitive repairs both axes.
///
/// The placement problem is a minimum multi-cut over the fence-free
/// store-to-violation path graph:
///  - nodes are the module's PCs; edges follow x86::successors, except
///    that buffer-draining instructions (mfence, lock-prefixed) have no
///    out-edges (the pending set dies there) and module-boundary
///    instructions end the path (they are violation points themselves
///    when a witness names them). Same-module summarized calls — the
///    ones the certifier inlines instead of escaping — carry edges into
///    the callee's entry and from the callee's reachable rets back to
///    the call's return point, so inter-entry witnesses (a store pending
///    across a call, violated inside or after the callee) are cut on the
///    same graph. The return edges are context-insensitive, a sound
///    over-approximation of the certifier's summary semantics.
///  - inserting a fence "before PC v" blocks every entry into v: branch
///    targets are always Label pseudo-instructions, so a non-label
///    instruction is entered only by fall-through and the spliced fence
///    intercepts all of it. Label PCs are therefore never candidates
///    (a jump to the label would skip a fence placed in front of it).
///  - a witness pair (store s, violation v) is cut by a fence set F when
///    v is unreachable from s's successors in the graph with the F-nodes
///    blocked.
///
/// The synthesizer searches for an exact minimum cut (combination search
/// in increasing size, deterministic lexicographic tie-break), falling
/// back to greedy max-coverage plus the always-sufficient per-store
/// anchor set (a fence immediately after each witnessed store) when the
/// search budget is exhausted. The result is then closed through the
/// certifier, not trusted from the graph:
///  1. re-analysis: the rewritten module (x86::insertFences) must
///     certify Robust under the same module context — through the
///     summary fixpoint, frame extents, points-to, everything;
///  2. minimality pruning: any fence whose removal keeps the module
///     Robust is dropped (the graph over-approximates the certifier's
///     FIFO-cover precision, so a graph-minimal cut can still carry a
///     certifier-redundant fence); after pruning, removing *any* single
///     fence provably reverts the verdict (verifyFenceMinimality).
///
/// Program-level repair (repairRobustness) runs the synthesis on every
/// non-Robust buffered-model (TSO or Relaxed) x86 module of a program
/// under its closed-program context and its own declared model, swaps
/// repaired modules in place, and hands the now-Robust program to
/// switchRobustToSc — formerly NotRobust workloads then
/// collect the SC fast path's state-space reduction. Repair is a
/// *program transformation*: the repaired program has strictly fewer
/// behaviours than the original (the relaxed outcomes are gone), which
/// is exactly the point — callers opt in, and bench_tso cross-checks
/// repaired-TSO against repaired-SC trace equality dynamically.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_ANALYSIS_FENCESYNTH_H
#define CASCC_ANALYSIS_FENCESYNTH_H

#include "analysis/Robustness.h"
#include "analysis/TsoRobust.h"

#include <memory>
#include <string>
#include <vector>

namespace ccc {
namespace analysis {

/// How a synthesis attempt ended.
enum class RepairOutcome {
  AlreadyRobust,  ///< No witnesses: nothing to repair, zero fences.
  Repaired,       ///< Fences inserted; re-analysis certifies Robust.
  NotRepairable,  ///< No fence set made the certifier say Robust.
};

const char *repairOutcomeName(RepairOutcome O);

/// One synthesized fence: an `mfence` spliced in front of an original
/// instruction.
struct FencePlacement {
  /// Entry whose reachable code contains the anchor instruction.
  std::string Entry;
  /// PC (in the *original* module) of the instruction the fence
  /// precedes.
  unsigned BeforePC = 0;
  /// PC of the inserted mfence in the repaired module.
  unsigned RepairedPC = 0;
  /// Text of the original anchor instruction.
  std::string AnchorText;
  /// Witness pairs of the pre-repair report this fence helps cut (on
  /// the path graph; display statistic).
  unsigned WitnessesCut = 0;

  std::string describe() const;
};

/// The result of one module-repair attempt.
struct FenceSynthResult {
  RepairOutcome Outcome = RepairOutcome::NotRepairable;
  std::vector<FencePlacement> Fences;
  /// The rewritten module; null unless Outcome == Repaired.
  std::shared_ptr<const x86::Module> RepairedModule;
  /// Certifier report on the original module.
  RobustReport Before;
  /// Certifier report on the repaired module (== Before when
  /// AlreadyRobust; the best attempt when NotRepairable).
  RobustReport After;
  /// Distinct (pending access, violation) witness pairs the cut had to
  /// cover.
  unsigned WitnessPairs = 0;
  /// Candidate insertion points considered.
  unsigned CandidatePoints = 0;
  /// Fence-set feasibility checks spent by the cut search.
  unsigned CutChecks = 0;
  std::vector<std::string> Notes;

  bool repaired() const { return Outcome == RepairOutcome::Repaired; }
  std::string toString() const;
};

/// Synthesizes a minimal fence set for \p M against the reorder table
/// of \p Model, under the optional closed-program context \p Ctx (the
/// same contract as robustness(): null means standalone worst-case
/// assumptions). Deterministic: equal inputs produce equal placements.
FenceSynthResult synthesizeFences(const x86::Module &M,
                                  const RobustContext *Ctx = nullptr,
                                  MemModel Model = MemModel::TSO);

/// Verifies the single-fence-removal minimality of a Repaired result:
/// for every synthesized fence, re-analyzing the module with that one
/// fence withheld must NOT certify Robust. Returns true when every
/// removal reverts the verdict; otherwise false with an explanation in
/// \p Why (when given). Also fails non-Repaired results.
bool verifyFenceMinimality(const x86::Module &M, const RobustContext *Ctx,
                           const FenceSynthResult &R,
                           std::string *Why = nullptr,
                           MemModel Model = MemModel::TSO);

/// Number of Mfence instructions in \p M — for synthesized-vs-hand
/// placement comparisons.
unsigned mfenceCount(const x86::Module &M);

/// Program-level repair summary.
struct ProgramRepairReport {
  struct ModuleRepair {
    std::string Name;
    FenceSynthResult Synth;
  };
  /// One entry per buffered-model (non-SC) x86 module that was not
  /// already Robust.
  std::vector<ModuleRepair> Modules;
  unsigned ModulesRepaired = 0;
  unsigned FencesInserted = 0;

  /// True when every attempted module ended Repaired (vacuously true
  /// when nothing needed repair).
  bool allRepaired() const;
  std::string toString() const;
};

/// Repairs every non-Robust buffered-model (TSO or Relaxed) x86 module
/// of \p P in place, each against its own declared model's reorder
/// table: builds the closed-program contexts, synthesizes fences per
/// module, and swaps each successfully repaired module's code for the
/// rewritten one (module name, memory model, object mode and global
/// bindings are preserved). Modules the synthesis cannot repair are left
/// untouched.
ProgramRepairReport repairRobustness(Program &P);

/// Deprecated spelling of repairRobustness, kept for pre-MemModel
/// clients (it was never TSO-specific at the program level — every
/// non-SC module gets repaired under its own model).
inline ProgramRepairReport repairTsoRobustness(Program &P) {
  return repairRobustness(P);
}

/// The repair-to-fast-path pipeline: repairRobustness, then a fresh
/// programRobustness over the repaired program handed to
/// switchRobustToSc. Returns the number of modules switched to SC;
/// \p Rep (when given) receives the repair report.
unsigned repairAndApplyScFastPath(Program &P,
                                  ProgramRepairReport *Rep = nullptr);

} // namespace analysis
} // namespace ccc

#endif // CASCC_ANALYSIS_FENCESYNTH_H
