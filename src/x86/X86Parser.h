//===- x86/X86Parser.h - AT&T-syntax assembly parser ------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the x86 assembly subset (AT&T operand order). Directives:
///   .data   name init      — declare a global word
///   .entry  name frame arity — declare a function entry point
///   .extern name arity     — declare the arity of an external callee
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_X86_X86PARSER_H
#define CASCC_X86_X86PARSER_H

#include "x86/X86Asm.h"

#include <memory>
#include <string>

namespace ccc {
namespace x86 {

/// Parses assembly source; returns null and sets \p Error on failure.
std::shared_ptr<Module> parseAsm(const std::string &Source,
                                 std::string &Error);

/// Parses or aborts; convenience for tests and examples.
std::shared_ptr<Module> parseAsmOrDie(const std::string &Source);

} // namespace x86
} // namespace ccc

#endif // CASCC_X86_X86PARSER_H
