//===- tests/ExplorerTest.cpp - Exploration and trace-algebra tests --------===//
//
// Unit tests for the exploration engine and the trace machinery: trace
// set algebra, termination-insensitive collapse, divergence detection,
// refinement verdicts, program linking, and frame-stack behavior of the
// global semantics.
//
//===----------------------------------------------------------------------===//

#include "cimp/CImpLang.h"
#include "core/Semantics.h"

#include <gtest/gtest.h>

using namespace ccc;

namespace {
Program singleModuleProgram(const std::string &Src,
                            std::vector<std::string> Entries) {
  Program P;
  cimp::addCImpModule(P, "m", Src);
  for (auto &E : Entries)
    P.addThread(E);
  P.link();
  return P;
}
} // namespace

TEST(TraceAlgebra, OrderingAndEquality) {
  Trace A{{1, 2}, TraceEnd::Done};
  Trace B{{1, 2}, TraceEnd::Div};
  Trace C{{1, 3}, TraceEnd::Done};
  EXPECT_TRUE(A == A);
  EXPECT_FALSE(A == B);
  EXPECT_TRUE(A < B || B < A);
  EXPECT_TRUE(A < C);
  EXPECT_EQ(A.toString(), "1:2:done");
  EXPECT_EQ(B.toString(), "1:2:div");
}

TEST(TraceAlgebra, SubsetAndCollapse) {
  TraceSet S;
  S.insert(Trace{{1}, TraceEnd::Done});
  S.insert(Trace{{2}, TraceEnd::Div});
  TraceSet T = S;
  T.insert(Trace{{3}, TraceEnd::Abort});
  EXPECT_TRUE(S.subsetOf(T));
  EXPECT_FALSE(T.subsetOf(S));
  EXPECT_TRUE(T.hasAbort());
  EXPECT_FALSE(S.hasAbort());

  TraceSet C = S.collapseTermination();
  EXPECT_TRUE(C.contains(Trace{{2}, TraceEnd::Done}));
  EXPECT_FALSE(C.contains(Trace{{2}, TraceEnd::Div}));
}

TEST(TraceAlgebra, RefinementVerdicts) {
  TraceSet Impl, Spec;
  Impl.insert(Trace{{1}, TraceEnd::Done});
  Spec.insert(Trace{{1}, TraceEnd::Done});
  Spec.insert(Trace{{2}, TraceEnd::Done});
  EXPECT_TRUE(refinesTraces(Impl, Spec).Holds);
  EXPECT_FALSE(refinesTraces(Spec, Impl).Holds);
  EXPECT_FALSE(equivTraces(Impl, Spec).Holds);

  // Termination-insensitive refinement: divergence matches done.
  TraceSet ImplDiv;
  ImplDiv.insert(Trace{{1}, TraceEnd::Div});
  EXPECT_FALSE(refinesTraces(ImplDiv, Spec).Holds);
  EXPECT_TRUE(refinesTraces(ImplDiv, Spec, /*TermInsensitive=*/true).Holds);
}

TEST(TraceAlgebra, TruncationMakesVerdictsNonDefinitive) {
  TraceSet Impl, Spec;
  Impl.insert(Trace{{1}, TraceEnd::Cut});
  Spec.insert(Trace{{1}, TraceEnd::Done});
  RefineResult R = refinesTraces(Impl, Spec);
  EXPECT_TRUE(R.Holds); // cut traces are not counterexamples...
  EXPECT_FALSE(R.Definitive); // ...but the verdict is only a bound
}

TEST(ExplorerDivergence, PureSwitchLoopsAreNotDivergence) {
  // Two already-terminating threads: the only cycles in the preemptive
  // graph are switch cycles, which must not count as divergence.
  Program P = singleModuleProgram("t1() { print(1); }\n"
                                  "t2() { print(2); }",
                                  {"t1", "t2"});
  TraceSet T = preemptiveTraces(P);
  for (const Trace &Tr : T.traces())
    EXPECT_NE(Tr.End, TraceEnd::Div) << Tr.toString();
}

TEST(ExplorerDivergence, RealSilentLoopsAreDivergence) {
  Program P = singleModuleProgram("main() { while (1) { skip; } }",
                                  {"main"});
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(Trace{{}, TraceEnd::Div}));
}

TEST(ExplorerDivergence, SpinWithPartnerHasBothOutcomes) {
  // One thread spins until the other sets a flag: fair schedules
  // terminate, unfair ones diverge — both are legitimate traces.
  Program P = singleModuleProgram(R"(
    global flag = 0;
    spinner() {
      v := 0;
      while (v == 0) { < v := [flag]; > }
      print(7);
    }
    setter() { < [flag] := 1; > }
  )",
                                  {"spinner", "setter"});
  TraceSet T = preemptiveTraces(P);
  EXPECT_TRUE(T.contains(Trace{{7}, TraceEnd::Done}));
  EXPECT_TRUE(T.contains(Trace{{}, TraceEnd::Div}));
}

TEST(ProgramLinking, AssignsDistinctAddressesAndRegions) {
  Program P;
  cimp::addCImpModule(P, "a", "global x = 1;\nf() { v := [x]; print(v); }");
  cimp::addCImpModule(P, "b", "global x = 2;\ng() { v := [x]; print(v); }");
  P.addThread("f");
  P.addThread("g");
  P.link();
  // Same-named globals of different modules get distinct addresses
  // (module-local namespaces).
  EXPECT_EQ(P.sharedAddrs().size(), 2u);
  // Thread free-list regions are disjoint.
  EXPECT_FALSE(P.threadRegion(0).overlaps(P.threadRegion(1)));

  // Each module reads its own x.
  TraceSet T = preemptiveTraces(P);
  EXPECT_TRUE(T.contains(Trace{{1, 2}, TraceEnd::Done}));
  EXPECT_TRUE(T.contains(Trace{{2, 1}, TraceEnd::Done}));
  EXPECT_EQ(T.size(), 2u);
}

TEST(ProgramLinking, ObjectAddrsTrackOwnership) {
  Program P;
  cimp::addCImpModule(P, "client", "global c = 0;\nmain() { skip; }");
  cimp::addCImpModule(P, "obj", "global L = 1;", /*ObjectMode=*/true);
  P.addThread("main");
  P.link();
  EXPECT_EQ(P.objectAddrs().size(), 1u);
  EXPECT_TRUE(P.objectAddrs().subsetOf(P.sharedAddrs()));
}

TEST(FrameStacks, NestedCallsReturnCorrectly) {
  Program P;
  cimp::addCImpModule(P, "m", R"(
    f1(x) { r := 0; r := f2(x + 1); return r * 2; }
    f2(x) { r := 0; r := f3(x + 1); return r + 10; }
    f3(x) { return x * x; }
    main() { r := 0; r := f1(1); print(r); }
  )");
  P.addThread("main");
  P.link();
  TraceSet T = preemptiveTraces(P);
  // f3(3)=9, f2 -> 19, f1 -> 38.
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(Trace{{38}, TraceEnd::Done}));
}

TEST(FrameStacks, DeepRecursionExhaustsFreeListGracefully) {
  Program P;
  cimp::addCImpModule(P, "m", R"(
    f(n) { r := 0; r := f(n + 1); return r; }
    main() { r := 0; r := f(0); }
  )");
  P.addThread("main");
  P.link();
  std::string Reason;
  EXPECT_FALSE(isSafe(P, {}, &Reason));
  EXPECT_NE(Reason.find("free list"), std::string::npos);
}

TEST(FrameStacks, MutualRecursionAcrossModules) {
  Program P;
  cimp::addCImpModule(P, "even", R"(
    is_even(n) {
      if (n == 0) { return 1; }
      r := 0;
      r := is_odd(n - 1);
      return r;
    }
  )");
  cimp::addCImpModule(P, "odd", R"(
    is_odd(n) {
      if (n == 0) { return 0; }
      r := 0;
      r := is_even(n - 1);
      return r;
    }
  )");
  cimp::addCImpModule(P, "main", R"(
    main() { r := 0; r := is_even(6); print(r);
             r := is_even(7); print(r); }
  )");
  P.addThread("main");
  P.link();
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(Trace{{1, 0}, TraceEnd::Done}));
}

TEST(ExplorerLimits, StateCapYieldsCutTraces) {
  Program P = singleModuleProgram(R"(
    global x = 0;
    t() { n := 0; while (n < 50) { < v := [x]; [x] := v + 1; > print(n); n := n + 1; } }
  )",
                                  {"t", "t"});
  ExploreOptions Opts;
  Opts.MaxStates = 50;
  ExploreStats Stats;
  TraceSet T = preemptiveTraces(P, Opts, &Stats);
  EXPECT_TRUE(Stats.Truncated);
  EXPECT_TRUE(T.truncated());
}
