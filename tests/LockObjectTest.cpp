//===- tests/LockObjectTest.cpp - The lock object library ------------------===//
//
// Behavioral tests of the synchronization object library: gamma_lock's
// abstract semantics (including misuse detection via its assert),
// pi_lock's TSO behavior in corner configurations, and the object
// confinement discipline.
//
//===----------------------------------------------------------------------===//

#include "cimp/CImpLang.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"
#include "workload/Workloads.h"
#include "x86/X86Lang.h"

#include <gtest/gtest.h>

using namespace ccc;

namespace {
Program clientWithGammaLock(const std::string &ClientSrc,
                            std::vector<std::string> Threads) {
  Program P;
  cimp::addCImpModule(P, "client", ClientSrc);
  sync::addGammaLock(P);
  for (auto &T : Threads)
    P.addThread(T);
  P.link();
  return P;
}
} // namespace

TEST(GammaLock, SingleThreadAcquireRelease) {
  Program P = clientWithGammaLock(
      "main() { lock(); print(1); unlock(); print(2); }", {"main"});
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(Trace{{1, 2}, TraceEnd::Done}));
}

TEST(GammaLock, UnlockWithoutLockAborts) {
  // The specification asserts the lock is held: misuse is a fault, which
  // the abstract object makes observable as abort.
  Program P = clientWithGammaLock("main() { unlock(); }", {"main"});
  std::string Reason;
  EXPECT_FALSE(isSafe(P, {}, &Reason));
  EXPECT_NE(Reason.find("assertion"), std::string::npos);
}

TEST(GammaLock, DoubleLockDeadlocksAsDivergence) {
  // Re-acquiring a held lock spins forever: observable as divergence,
  // not abort.
  Program P = clientWithGammaLock("main() { lock(); lock(); print(9); }",
                                  {"main"});
  TraceSet T = preemptiveTraces(P);
  EXPECT_TRUE(T.contains(Trace{{}, TraceEnd::Div}));
  EXPECT_FALSE(T.contains(Trace{{9}, TraceEnd::Done}));
  EXPECT_FALSE(T.hasAbort());
}

TEST(GammaLock, ProtectsMultipleCriticalSections) {
  Program P = clientWithGammaLock(R"(
    global a = 0;
    global b = 0;
    t1() { lock(); [a] := 1; [b] := 1; unlock(); }
    t2() {
      lock();
      va := [a];
      vb := [b];
      unlock();
      print(vb - va);
    }
  )",
                                  {"t1", "t2"});
  EXPECT_TRUE(isDRF(P));
  TraceSet T = preemptiveTraces(P);
  // t2 sees a and b together: 0-0 or 1-1, so it always prints 0.
  for (const Trace &Tr : T.traces())
    for (int64_t E : Tr.Events)
      EXPECT_EQ(E, 0) << Tr.toString();
}

TEST(PiLock, ThreeThreadsStillMutuallyExclude) {
  Program P = workload::asmCounterWithPiLock(x86::MemModel::TSO, 3);
  ExploreOptions Opts;
  Opts.MaxStates = 400000;
  ExploreStats Stats;
  TraceSet T = preemptiveTraces(P, Opts, &Stats);
  ASSERT_FALSE(T.hasAbort());
  for (const Trace &Tr : T.traces()) {
    if (Tr.End != TraceEnd::Done)
      continue;
    std::vector<int64_t> Sorted = Tr.Events;
    std::sort(Sorted.begin(), Sorted.end());
    EXPECT_EQ(Sorted, (std::vector<int64_t>{0, 1, 2})) << Tr.toString();
  }
}

TEST(PiLock, ReleaseStoreEventuallyFlushes) {
  // A single thread locking and unlocking twice: the buffered release
  // store must be visible to the second acquire (it drains at the
  // lock-prefixed cmpxchg).
  Program P;
  x86::addAsmModule(P, "client", R"(
    .entry main 0 0
    .extern lock 0
    .extern unlock 0
    main:
            call lock
            call unlock
            call lock
            call unlock
            printl $1
            retl
  )",
                    x86::MemModel::TSO);
  sync::addPiLock(P, x86::MemModel::TSO);
  P.addThread("main");
  P.link();
  TraceSet T = preemptiveTraces(P);
  EXPECT_TRUE(T.contains(Trace{{1}, TraceEnd::Done}));
  EXPECT_FALSE(T.hasAbort());
}

TEST(PiLock, ConfinedRacesDoNotTouchClientData) {
  Program P = workload::asmCounterWithPiLock(x86::MemModel::SC, 2);
  Explorer<World> E;
  E.build(World::load(P));
  auto Races = E.findRacesConfinedTo(P.objectAddrs());
  ASSERT_FALSE(Races.empty());
  for (const RaceWitness &W : Races) {
    EXPECT_TRUE(W.Confined);
    // In particular, no race touches the client counter x.
    AddrSet ClientData = P.sharedAddrs().minus(P.objectAddrs());
    EXPECT_FALSE(W.FP1.FP.asSet().intersects(ClientData));
    EXPECT_FALSE(W.FP2.FP.asSet().intersects(ClientData));
  }
}

TEST(ObjectConfinement, ClientsCannotBeCorruptedByObject) {
  // Object code writing outside its own globals (and frame) aborts, so a
  // faulty object cannot silently corrupt client state.
  Program P;
  cimp::addCImpModule(P, "client", R"(
    global c = 7;
    main() { r := 0; r := poke(c); v := [c]; print(v); }
  )");
  cimp::addCImpModule(P, "obj", R"(
    poke(p) { [p] := 0; return 0; }
  )",
                      /*ObjectMode=*/true);
  P.addThread("main");
  P.link();
  TraceSet T = preemptiveTraces(P);
  EXPECT_TRUE(T.hasAbort());
  // The corrupted print(0) never happens.
  EXPECT_FALSE(T.contains(Trace{{0}, TraceEnd::Done}));
}

TEST(ObjectConfinement, ObjectMayUseItsOwnScratchData) {
  Program P;
  cimp::addCImpModule(P, "client", R"(
    main() { r := 0; r := bump(); print(r); r := bump(); print(r); }
  )");
  cimp::addCImpModule(P, "obj", R"(
    global counter = 0;
    bump() { v := [counter]; [counter] := v + 1; return v; }
  )",
                      /*ObjectMode=*/true);
  P.addThread("main");
  P.link();
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(Trace{{0, 1}, TraceEnd::Done}));
}
