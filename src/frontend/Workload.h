//===- frontend/Workload.h - Text front end for workload files --*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-from-source front end: a parser for `.ccc` workload
/// description files that declare named modules (Clight, CImp, or x86
/// source with a per-module memory model), thread roots, and check
/// requests, plus the builder that compiles and links them through the
/// existing pipeline into a `Program`. Scenario diversity becomes a data
/// problem: dropping a file into the corpus (or the server's job
/// directory) replaces writing and relinking a C++ generator.
///
/// Grammar (line-oriented outside module bodies; `#` and `//` start
/// comments):
///
///   workload <name>                        -- optional, once
///   module <name> <clight|cimp|x86>
///          [model <sc|tso|relaxed>] [object] [compile] {
///     ...module source, passed verbatim to the language parser...
///   }
///   thread <entry> [int-arg...]
///   check <explore|drf|robustness|fence-synth|passes>
///
/// `model` declares an x86 module's memory model (default tso) or the
/// target model of a `compile`d Clight module; interpreted Clight and
/// CImp modules run SC and reject the attribute. `object` marks a
/// synchronization-object module (its globals become object-owned, like
/// sync::addGammaLock). `compile` runs a Clight module through the full
/// Fig. 11 pipeline and links the compiled assembly instead of the
/// source interpretation. Module bodies are captured by brace balance —
/// the embedded languages' braces all nest, and none of them uses a
/// brace inside a string or comment.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_FRONTEND_WORKLOAD_H
#define CASCC_FRONTEND_WORKLOAD_H

#include "core/MemModel.h"
#include "core/Program.h"

#include <optional>
#include <string>
#include <vector>

namespace ccc {
namespace frontend {

/// The source language of one module declaration.
enum class SrcLang { Clight, CImp, X86 };

const char *srcLangName(SrcLang L);
std::optional<SrcLang> parseSrcLang(const std::string &S);

/// One check request; dispatched by the job runner (JobRunner.h).
enum class CheckKind { Explore, Drf, Robustness, FenceSynth, Passes };

const char *checkKindName(CheckKind K);
std::optional<CheckKind> parseCheckKind(const std::string &S);

/// One `module` declaration, source still in text form.
struct ModuleSpec {
  std::string Name;
  SrcLang Lang = SrcLang::CImp;
  /// Declared model (x86 / compiled Clight); nullopt = attribute absent
  /// (x86 defaults to TSO at build time, everything else runs SC).
  std::optional<MemModel> Model;
  bool Object = false;
  bool Compile = false;
  /// The body text between the braces, verbatim.
  std::string Source;
};

/// One `thread` declaration.
struct ThreadSpec {
  std::string Entry;
  std::vector<int32_t> Args;
};

/// A parsed workload description file.
struct WorkloadFile {
  std::string Name;
  std::vector<ModuleSpec> Modules;
  std::vector<ThreadSpec> Threads;
  std::vector<CheckKind> Checks;
};

/// A parse failure: message plus 1-based source line.
struct ParseError {
  std::string Message;
  unsigned Line = 0;

  std::string str() const {
    return "line " + std::to_string(Line) + ": " + Message;
  }
};

/// Parses workload description text. Returns nullopt and fills \p Err on
/// malformed input — never aborts, whatever the input (the fuzz test
/// feeds it truncations and garbage). Structural validation (duplicate
/// module names, unknown languages/models/checks, attribute misuse,
/// missing threads) happens here; module *bodies* are validated by
/// buildProgram, which runs the language parsers.
std::optional<WorkloadFile> parseWorkload(const std::string &Text,
                                          ParseError &Err);

/// Prints \p W in canonical form. print(parse(print(W))) == print(W):
/// the round-trip fixpoint the corpus test pins.
std::string printWorkload(const WorkloadFile &W);

/// Compiles and links \p W into a Program through the existing pipeline
/// (language parsers, compileClight for `compile` modules, the linker).
/// Returns nullopt and fills \p Err on the first module whose source
/// fails its language parser, a compile-mode verifier finding, or a
/// thread entry no module defines. The returned program is linked.
std::optional<Program> buildProgram(const WorkloadFile &W, std::string &Err);

} // namespace frontend
} // namespace ccc

#endif // CASCC_FRONTEND_WORKLOAD_H
