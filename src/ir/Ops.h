//===- ir/Ops.h - Shared operators of the compiler IRs ----------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operators and comparison conditions shared by the CminorSel, RTL, LTL,
/// Linear and Mach intermediate representations, together with their
/// evaluation on runtime values (32-bit wrap-around arithmetic).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_IR_OPS_H
#define CASCC_IR_OPS_H

#include "mem/Value.h"

#include <cstdint>
#include <optional>
#include <string>

namespace ccc {
namespace ir {

/// Machine-level operators (CompCert's Op.operation, scaled down).
/// Immediate forms carry their constant in the instruction.
enum class Oper : uint8_t {
  // 0-argument.
  Intconst,   ///< dst = imm
  Addrglobal, ///< dst = &global
  // 1-argument.
  Move,   ///< dst = a1
  Neg,    ///< dst = -a1
  BoolNot,///< dst = (a1 == 0)
  AddImm, ///< dst = a1 + imm
  MulImm, ///< dst = a1 * imm
  ShlImm, ///< dst = a1 << imm
  SarImm, ///< dst = a1 >> imm (arithmetic)
  CmpImm, ///< dst = (a1 <cond> imm)
  // 2-argument.
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  And,
  Or,
  Xor,
  Cmp, ///< dst = (a1 <cond> a2)
};

/// Comparison conditions.
enum class Cmp : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/// Number of register arguments an operator takes.
unsigned operArity(Oper O);
const char *operName(Oper O);
const char *cmpName(Cmp C);
Cmp cmpSwap(Cmp C);   ///< Swap operand order: a < b becomes b > a.
Cmp cmpNegate(Cmp C); ///< Logical negation: a < b becomes a >= b.

/// Evaluates a comparison on two values. Pointers compare with Eq/Ne only.
std::optional<bool> evalCmp(Cmp C, const Value &A, const Value &B);

/// Evaluates an operator. \p A and \p B are the register arguments (B
/// ignored for unary ops); \p Imm is the instruction immediate;
/// \p GlobalAddr is the resolved address for Addrglobal. Returns nullopt
/// on a dynamic type error or division by zero.
std::optional<Value> evalOper(Oper O, Cmp C, int32_t Imm, Addr GlobalAddr,
                              const Value &A, const Value &B);

} // namespace ir
} // namespace ccc

#endif // CASCC_IR_OPS_H
