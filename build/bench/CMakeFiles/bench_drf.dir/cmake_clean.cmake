file(REMOVE_RECURSE
  "CMakeFiles/bench_drf.dir/bench_drf.cpp.o"
  "CMakeFiles/bench_drf.dir/bench_drf.cpp.o.d"
  "bench_drf"
  "bench_drf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
