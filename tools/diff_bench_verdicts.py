#!/usr/bin/env python3
"""Diff two BENCH_*.json files on their verdict content only.

CI runs every bench binary twice — partial-order reduction on (the
default) and off (--no-por) — and this script asserts the two runs
agree on every verdict-bearing field: DRF/NPDRF verdicts, refinement
and trace-equality checks, fast-path decisions, soundness flags,
truncation. Everything the reduction is allowed to change is ignored:
state counts, edge counts, timings, throughput, memory statistics, and
the PorStats themselves (all floats, plus the integer counters listed
below). Exits nonzero with a path-level report when the runs disagree,
making the POR-on/POR-off diff a hard-failing check.

The fence_synth section of BENCH_tso.json is deliberately verdict-rich
under this rule: each repaired workload's per-module repaired_verdict
strings, its synthesized fence count, and the trace_hash of the
repaired program's full trace set all survive clean(), so a repaired
module whose verdict or trace set differs between the POR-on and
POR-off run hard-fails the diff.
"""

import json
import sys

# Integer statistics a reduced exploration legitimately changes.
DROP_EXACT = {
    "expanded",
    "probes",
    "dedup_hits",
    "hash_collisions",
    "peak_frontier",
    "state_bytes",
    "bytes_per_state",
    "table_bytes",
    "rec_bytes",
    "arena_capacity_bytes",
    "arena_live_bytes",
    "tree_nodes",
    "page_pool_capacity_bytes",
    "page_pool_live_bytes",
    "graph_bytes",
    "unique_mem_pages",
    "total_page_refs",
    "peak_rss_kb",
}
# Substring-matched keys: state counts and the PorStats block.
DROP_SUBSTR = ("states", "por_")


def clean(x):
    """Strip non-verdict content; floats are all timings/rates/ratios."""
    if isinstance(x, dict):
        return {
            k: clean(v)
            for k, v in x.items()
            if k not in DROP_EXACT
            and not any(s in k for s in DROP_SUBSTR)
            and not isinstance(v, float)
        }
    if isinstance(x, list):
        return [clean(v) for v in x]
    return x


def report(a, b, path="$"):
    if isinstance(a, dict) and isinstance(b, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a or k not in b:
                print(f"{path}.{k}: present in only one run")
            elif a[k] != b[k]:
                report(a[k], b[k], f"{path}.{k}")
        return
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            print(f"{path}: {len(a)} vs {len(b)} entries")
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                report(x, y, f"{path}[{i}]")
        return
    print(f"{path}: {a!r} vs {b!r}")


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} <bench-a.json> <bench-b.json>")
        return 2
    with open(argv[1]) as f:
        a = clean(json.load(f))
    with open(argv[2]) as f:
        b = clean(json.load(f))
    if a == b:
        print(f"OK: {argv[1]} and {argv[2]} agree on every verdict field")
        return 0
    print(f"FAIL: verdict tables differ between {argv[1]} and {argv[2]}:")
    report(a, b)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
