file(REMOVE_RECURSE
  "CMakeFiles/bench_sepcomp.dir/bench_sepcomp.cpp.o"
  "CMakeFiles/bench_sepcomp.dir/bench_sepcomp.cpp.o.d"
  "bench_sepcomp"
  "bench_sepcomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sepcomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
