//===- compiler/ConstProp.cpp - Constant propagation (extension pass) ------===//

#include "compiler/Passes.h"

#include <deque>
#include <map>

using namespace ccc;
using namespace ccc::compiler;

namespace {

/// Abstract value: unknown (top) or a known integer constant. Memory
/// contents are never tracked (other threads may change shared memory at
/// switch points), so Load and Call results are always top — exactly the
/// discipline Sec. 2.2 requires of a concurrency-safe optimizer.
struct AVal {
  bool Known = false;
  int32_t K = 0;

  static AVal top() { return {}; }
  static AVal konst(int32_t V) { return {true, V}; }

  bool operator==(const AVal &O) const {
    return Known == O.Known && (!Known || K == O.K);
  }
};

/// Meet: equal constants stay; anything else is top.
AVal meet(const AVal &A, const AVal &B) {
  if (A.Known && B.Known && A.K == B.K)
    return A;
  return AVal::top();
}

using Env = std::vector<AVal>;

std::vector<unsigned> successors(const rtl::Instr &I) {
  switch (I.K) {
  case rtl::Instr::Kind::Return:
  case rtl::Instr::Kind::Tailcall:
    return {};
  case rtl::Instr::Kind::Cond:
    return {I.S1, I.S2};
  default:
    return {I.S1};
  }
}

/// Evaluates an Op whose arguments are all known constants; Addrglobal
/// and Move-of-unknown stay symbolic.
std::optional<int32_t> tryFold(const rtl::Instr &I, const Env &E) {
  if (I.K != rtl::Instr::Kind::Op || I.O == ir::Oper::Addrglobal)
    return std::nullopt;
  Value A, B;
  unsigned Arity = ir::operArity(I.O);
  if (Arity >= 1) {
    if (!E[I.Args[0]].Known)
      return std::nullopt;
    A = Value::makeInt(E[I.Args[0]].K);
  }
  if (Arity >= 2) {
    if (!E[I.Args[1]].Known)
      return std::nullopt;
    B = Value::makeInt(E[I.Args[1]].K);
  }
  auto R = ir::evalOper(I.O, I.C, I.Imm, /*GlobalAddr=*/0, A, B);
  if (!R || !R->isInt())
    return std::nullopt;
  return R->asInt();
}

/// Transfer function of one instruction.
void transfer(const rtl::Instr &I, Env &E) {
  switch (I.K) {
  case rtl::Instr::Kind::Op:
    if (I.O == ir::Oper::Intconst)
      E[I.Dst] = AVal::konst(I.Imm);
    else if (auto F = tryFold(I, E))
      E[I.Dst] = AVal::konst(*F);
    else
      E[I.Dst] = AVal::top();
    break;
  case rtl::Instr::Kind::Load:
    E[I.Dst] = AVal::top();
    break;
  case rtl::Instr::Kind::Call:
    if (I.HasDst)
      E[I.Dst] = AVal::top();
    break;
  default:
    break;
  }
}

} // namespace

std::shared_ptr<rtl::Module>
ccc::compiler::constprop(const rtl::Module &M) {
  auto Out = std::make_shared<rtl::Module>(M);
  for (rtl::Function &F : Out->Funcs) {
    // Forward dataflow to a fixpoint. Parameters are unknown.
    std::map<unsigned, Env> In;
    Env Top(F.NumRegs, AVal::top());
    std::map<unsigned, std::vector<unsigned>> Preds;
    for (const auto &KV : F.Graph)
      for (unsigned S : successors(KV.second))
        Preds[S].push_back(KV.first);

    std::deque<unsigned> Work;
    In[F.Entry] = Top;
    Work.push_back(F.Entry);
    while (!Work.empty()) {
      unsigned N = Work.front();
      Work.pop_front();
      auto It = F.Graph.find(N);
      if (It == F.Graph.end())
        continue;
      Env E = In[N];
      transfer(It->second, E);
      for (unsigned S : successors(It->second)) {
        auto InIt = In.find(S);
        Env NewIn = E;
        if (InIt != In.end()) {
          for (unsigned R = 0; R < F.NumRegs; ++R)
            NewIn[R] = meet(InIt->second[R], E[R]);
          if (NewIn == InIt->second)
            continue;
        }
        In[S] = std::move(NewIn);
        Work.push_back(S);
      }
    }

    // Rewrite: fold constant Ops and decidable conditions.
    for (auto &KV : F.Graph) {
      auto InIt = In.find(KV.first);
      if (InIt == In.end())
        continue; // unreachable node: leave untouched
      rtl::Instr &I = KV.second;
      const Env &E = InIt->second;
      if (I.K == rtl::Instr::Kind::Op) {
        if (auto FVal = tryFold(I, E)) {
          I.O = ir::Oper::Intconst;
          I.Imm = *FVal;
          I.Args.clear();
          I.Global.clear();
        }
        continue;
      }
      if (I.K == rtl::Instr::Kind::Cond) {
        Value A, B = Value::makeInt(I.Imm);
        if (!E[I.Args[0]].Known)
          continue;
        A = Value::makeInt(E[I.Args[0]].K);
        if (!I.CondOneArg) {
          if (!E[I.Args[1]].Known)
            continue;
          B = Value::makeInt(E[I.Args[1]].K);
        }
        auto R = ir::evalCmp(I.C, A, B);
        if (!R)
          continue;
        unsigned Taken = *R ? I.S1 : I.S2;
        I = rtl::Instr();
        I.K = rtl::Instr::Kind::Nop;
        I.S1 = Taken;
      }
    }
  }
  return Out;
}
