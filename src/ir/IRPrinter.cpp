//===- ir/IRPrinter.cpp - Textual dumps of the compiler IRs ----------------===//

#include "ir/IRPrinter.h"

#include "support/StrUtil.h"

using namespace ccc;
using namespace ccc::ir;

namespace {

std::string regStr(rtl::Reg R) { return "r" + std::to_string(R); }
std::string regStr(const ltl::Loc &L) { return L.toString(); }

template <typename RegT>
std::string amStr(const rtl::AddrMode<RegT> &AM) {
  if (AM.K == rtl::AddrMode<RegT>::Kind::Global)
    return "&" + AM.Global;
  return "[" + regStr(AM.Base) + "]";
}

template <typename RegT>
std::string argsStr(const std::vector<RegT> &Args) {
  std::vector<std::string> Parts;
  for (const RegT &R : Args)
    Parts.push_back(regStr(R));
  return join(Parts, ", ");
}

template <typename RegT>
std::string opStr(Oper O, Cmp C, int32_t Imm, const std::string &Global,
                  const std::vector<RegT> &Args) {
  StrBuilder B;
  B << operName(O);
  if (O == Oper::Cmp || O == Oper::CmpImm)
    B << '.' << cmpName(C);
  B << ' ';
  if (O == Oper::Addrglobal)
    B << '&' << Global;
  else if (operArity(O) == 0 || O == Oper::AddImm || O == Oper::MulImm ||
           O == Oper::ShlImm || O == Oper::SarImm || O == Oper::CmpImm) {
    B << argsStr(Args);
    if (!Args.empty())
      B << ", ";
    B << '$' << Imm;
  } else {
    B << argsStr(Args);
  }
  return B.take();
}

template <typename RegT> std::string cfgInstrStr(const rtl::InstrT<RegT> &I) {
  using K = typename rtl::InstrT<RegT>::Kind;
  StrBuilder B;
  switch (I.K) {
  case K::Nop:
    B << "nop -> " << I.S1;
    break;
  case K::Op:
    B << regStr(I.Dst) << " = "
      << opStr(I.O, I.C, I.Imm, I.Global, I.Args) << " -> " << I.S1;
    break;
  case K::Load:
    B << regStr(I.Dst) << " = load " << amStr(I.AM) << " -> " << I.S1;
    break;
  case K::Store:
    B << "store " << amStr(I.AM) << " = " << regStr(I.Args[0]) << " -> "
      << I.S1;
    break;
  case K::Call:
    if (I.HasDst)
      B << regStr(I.Dst) << " = ";
    B << "call " << I.Callee << "(" << argsStr(I.Args) << ") -> " << I.S1;
    break;
  case K::Tailcall:
    B << "tailcall " << I.Callee << "(" << argsStr(I.Args) << ")";
    break;
  case K::Cond:
    B << "if " << cmpName(I.C) << "(" << argsStr(I.Args);
    if (I.CondOneArg)
      B << ", $" << I.Imm;
    B << ") -> " << I.S1 << " else " << I.S2;
    break;
  case K::Return:
    B << "return";
    if (I.HasArg)
      B << ' ' << regStr(I.Args[0]);
    break;
  case K::Print:
    B << "print " << regStr(I.Args[0]) << " -> " << I.S1;
    break;
  }
  return B.take();
}

template <typename RegT>
std::string cfgFunctionStr(const rtl::FunctionT<RegT> &F) {
  StrBuilder B;
  B << F.Name << "(params=" << F.NumParams << ", entry=" << F.Entry
    << "):\n";
  for (const auto &KV : F.Graph)
    B << "  " << KV.first << ": " << cfgInstrStr(KV.second) << '\n';
  return B.take();
}

std::string linInstrStr(const linear::Instr &I) {
  using K = linear::Instr::Kind;
  StrBuilder B;
  switch (I.K) {
  case K::Label:
    B << 'L' << I.Label << ':';
    break;
  case K::Goto:
    B << "goto L" << I.Label;
    break;
  case K::Op:
    B << I.Dst.toString() << " = "
      << opStr(I.O, I.C, I.Imm, I.Global, I.Args);
    break;
  case K::Load:
    B << I.Dst.toString() << " = load " << amStr(I.AM);
    break;
  case K::Store:
    B << "store " << amStr(I.AM) << " = " << I.Args[0].toString();
    break;
  case K::Call:
    if (I.HasDst)
      B << I.Dst.toString() << " = ";
    B << "call " << I.Callee << "(" << argsStr(I.Args) << ")";
    break;
  case K::Tailcall:
    B << "tailcall " << I.Callee << "(" << argsStr(I.Args) << ")";
    break;
  case K::Cond:
    B << "if " << cmpName(I.C) << "(" << argsStr(I.Args);
    if (I.CondOneArg)
      B << ", $" << I.Imm;
    B << ") goto L" << I.Label;
    break;
  case K::Return:
    B << "return";
    if (I.HasArg)
      B << ' ' << I.Args[0].toString();
    break;
  case K::Print:
    B << "print " << I.Args[0].toString();
    break;
  }
  return B.take();
}

template <typename ModuleT, typename FnStr>
std::string moduleStr(const ModuleT &M, FnStr FS) {
  StrBuilder B;
  for (const auto &G : M.Globals)
    B << "global " << G.first << " = " << G.second << '\n';
  for (const auto &F : M.Funcs)
    B << FS(F);
  return B.take();
}

} // namespace

std::string ccc::ir::toString(const rtl::Instr &I) { return cfgInstrStr(I); }
std::string ccc::ir::toString(const ltl::Instr &I) { return cfgInstrStr(I); }
std::string ccc::ir::toString(const linear::Instr &I) {
  return linInstrStr(I);
}

std::string ccc::ir::toString(const rtl::Function &F) {
  return cfgFunctionStr(F);
}
std::string ccc::ir::toString(const ltl::Function &F) {
  return cfgFunctionStr(F);
}

std::string ccc::ir::toString(const linear::Function &F) {
  StrBuilder B;
  B << F.Name << "(params=" << F.NumParams << ", slots=" << F.NumSlots
    << "):\n";
  for (const linear::Instr &I : F.Code)
    B << "  " << linInstrStr(I) << '\n';
  return B.take();
}

std::string ccc::ir::toString(const mach::Function &F) {
  StrBuilder B;
  B << F.Name << "(params=" << F.NumParams << ", frame=" << F.FrameSize
    << "):\n";
  for (const linear::Instr &I : F.Code)
    B << "  " << linInstrStr(I) << '\n';
  return B.take();
}

std::string ccc::ir::toString(const rtl::Module &M) {
  return moduleStr(M, [](const rtl::Function &F) { return toString(F); });
}
std::string ccc::ir::toString(const ltl::Module &M) {
  return moduleStr(M, [](const ltl::Function &F) { return toString(F); });
}
std::string ccc::ir::toString(const linear::Module &M) {
  return moduleStr(M,
                   [](const linear::Function &F) { return toString(F); });
}
std::string ccc::ir::toString(const mach::Module &M) {
  return moduleStr(M, [](const mach::Function &F) { return toString(F); });
}
