//===- validate/Wd.h - Well-definedness and determinism checkers -*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable checkers for the language-level side conditions of the
/// framework:
///  - wd(tl) (Def. 1): every step is forward, respects LEffect, depends
///    only on its read set (checked by memory perturbation), and its
///    non-determinism is unaffected by out-of-footprint memory;
///  - det(tl): module-local determinism, the premise of the flip lemma
///    (step 4 of Fig. 2);
///  - ReachClose (Def. 4): the guarantee HG holds along every execution
///    under rely-compatible environment interference.
///
/// The paper proves these universally in Coq; here they are validated on
/// the reachable module-local configurations of concrete programs, with
/// sampled perturbations standing in for the universal quantifiers.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_VALIDATE_WD_H
#define CASCC_VALIDATE_WD_H

#include "core/Program.h"

#include <string>
#include <vector>

namespace ccc {
namespace validate {

/// Result of a wd / det / ReachClose run.
struct CheckReport {
  bool Ok = true;
  /// The MaxStates bound stopped the local exploration before the
  /// reachable set was exhausted. A truncated run is a prefix check, not
  /// a certificate: Ok is forced false (with a violation naming the
  /// bound) so no caller can mistake it for one.
  bool Truncated = false;
  unsigned StatesChecked = 0;
  unsigned StepsChecked = 0;
  std::vector<std::string> Violations;

  void violate(std::string V) {
    Ok = false;
    if (Violations.size() < 16)
      Violations.push_back(std::move(V));
  }
};

struct CheckOptions {
  unsigned MaxStates = 2000;
  /// Perturbed memories tried per step for Def. 1 items (3) and (4).
  unsigned PerturbSamples = 3;
  /// Rely interference samples per state for ReachClose.
  unsigned RelySamples = 2;
};

/// Checks Def. 1 on the module-local executions of entry \p Entry of
/// module \p ModIdx of the linked program \p P.
CheckReport wdCheck(const Program &P, unsigned ModIdx,
                    const std::string &Entry,
                    const std::vector<Value> &Args,
                    CheckOptions Opts = {});

/// Checks det(tl) on the same executions: at most one successor per
/// module-local configuration.
CheckReport detCheck(const Program &P, unsigned ModIdx,
                     const std::string &Entry,
                     const std::vector<Value> &Args,
                     CheckOptions Opts = {});

/// Checks ReachClose (Def. 4): HG holds after every step, under sampled
/// rely-compatible environment interference.
CheckReport reachCloseCheck(const Program &P, unsigned ModIdx,
                            const std::string &Entry,
                            const std::vector<Value> &Args,
                            CheckOptions Opts = {});

} // namespace validate
} // namespace ccc

#endif // CASCC_VALIDATE_WD_H
