//===- core/StatePool.h - Slab pools for the state store --------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Slab allocation for the exploration engine's state representation:
///
///  - SlabVector<T>: an append-only chunked array with stable element
///    addresses (no reallocation copies) used for intern records and
///    tree-store nodes. Exposes exact capacity-vs-live byte accounting so
///    ExploreStats::StateBytes can report arena bytes honestly instead of
///    guessing at std::vector growth slack.
///  - RecyclingPool<T>: a thread-safe free-list slab pool for objects with
///    high churn — the COW memory pages, which previously went through
///    one shared_ptr control-block allocation each. Recycled objects are
///    reused in LIFO order, so hot exploration loops keep touching the
///    same few cache-warm slots.
///
/// Both are dependency-free templates (mem/ includes this header for the
/// page pool, so it must not pull in core types).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_STATEPOOL_H
#define CASCC_CORE_STATEPOOL_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace ccc {

/// Exact byte accounting of one arena: what the slabs reserve vs what the
/// live objects actually occupy. CapacityBytes >= LiveBytes always; the
/// difference is allocation slack the process is still charged for, which
/// is why StateBytes accounts capacity, not live.
struct PoolStats {
  std::size_t CapacityBytes = 0;
  std::size_t LiveBytes = 0;
  std::size_t LiveObjects = 0;
};

/// An append-only chunked array: grows by fixed-size slabs, never moves
/// an element, and reports exact slab capacity. Indexing is two shifts —
/// ChunkSize is a power of two.
template <typename T, std::size_t ChunkSizeLog2 = 12> class SlabVector {
public:
  static constexpr std::size_t ChunkSize = std::size_t(1) << ChunkSizeLog2;
  static constexpr std::size_t ChunkMask = ChunkSize - 1;

  std::size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  T &operator[](std::size_t I) {
    return Chunks[I >> ChunkSizeLog2][I & ChunkMask];
  }
  const T &operator[](std::size_t I) const {
    return Chunks[I >> ChunkSizeLog2][I & ChunkMask];
  }

  T &push_back(T V) {
    if ((Count & ChunkMask) == 0 && (Count >> ChunkSizeLog2) == Chunks.size())
      Chunks.push_back(std::make_unique<T[]>(ChunkSize));
    T &Slot = (*this)[Count];
    Slot = std::move(V);
    ++Count;
    return Slot;
  }

  /// Exact arena accounting: slabs reserved vs elements live.
  PoolStats stats() const {
    PoolStats S;
    S.CapacityBytes = Chunks.size() * ChunkSize * sizeof(T) +
                      Chunks.capacity() * sizeof(Chunks[0]);
    S.LiveBytes = Count * sizeof(T);
    S.LiveObjects = Count;
    return S;
  }

private:
  std::vector<std::unique_ptr<T[]>> Chunks;
  std::size_t Count = 0;
};

/// A thread-safe recycling slab pool: objects are carved out of fixed
/// slabs and returned to a LIFO free list instead of the heap. acquire()
/// default- or copy-constructs in place; release() destroys and recycles
/// the slot. Slabs are never returned to the OS (the exploration engine's
/// grow-only discipline), so CapacityBytes is monotone and exact.
template <typename T, std::size_t SlabObjects = 1024> class RecyclingPool {
public:
  template <typename... Args> T *acquire(Args &&...CtorArgs) {
    void *Slot = takeSlot();
    return ::new (Slot) T(std::forward<Args>(CtorArgs)...);
  }

  void release(T *Obj) {
    Obj->~T();
    std::lock_guard<std::mutex> Lock(Mu);
    FreeList.push_back(Obj);
    --Live;
  }

  PoolStats stats() const {
    std::lock_guard<std::mutex> Lock(Mu);
    PoolStats S;
    S.CapacityBytes = Slabs.size() * SlabObjects * sizeof(T) +
                      FreeList.capacity() * sizeof(void *);
    S.LiveBytes = Live * sizeof(T);
    S.LiveObjects = Live;
    return S;
  }

private:
  void *takeSlot() {
    std::lock_guard<std::mutex> Lock(Mu);
    if (FreeList.empty()) {
      Slabs.push_back(
          std::make_unique<Storage[]>(SlabObjects));
      Storage *Slab = Slabs.back().get();
      FreeList.reserve(FreeList.size() + SlabObjects);
      // Push in reverse so the LIFO free list hands out ascending
      // addresses within a fresh slab.
      for (std::size_t I = SlabObjects; I > 0; --I)
        FreeList.push_back(&Slab[I - 1]);
    }
    void *Slot = FreeList.back();
    FreeList.pop_back();
    ++Live;
    return Slot;
  }

  using Storage = std::aligned_storage_t<sizeof(T), alignof(T)>;
  mutable std::mutex Mu;
  std::vector<std::unique_ptr<Storage[]>> Slabs;
  std::vector<void *> FreeList;
  std::size_t Live = 0;
};

} // namespace ccc

#endif // CASCC_CORE_STATEPOOL_H
