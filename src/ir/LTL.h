//===- ir/LTL.h - The LTL IR (located code) ---------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LTL: RTL after register Allocation — pseudo-registers are replaced by
/// locations: machine registers or abstract stack slots (CompCert's
/// locsets). Slots become concrete frame memory only in Mach (Stacking).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_IR_LTL_H
#define CASCC_IR_LTL_H

#include "ir/RTL.h"
#include "x86/X86Asm.h"

namespace ccc {
namespace ltl {

/// A location: a machine register or an abstract stack slot.
struct Loc {
  bool IsReg = true;
  x86::Reg R = x86::Reg::EBX;
  unsigned Slot = 0;

  static Loc reg(x86::Reg R) {
    Loc L;
    L.IsReg = true;
    L.R = R;
    return L;
  }
  static Loc slot(unsigned S) {
    Loc L;
    L.IsReg = false;
    L.Slot = S;
    return L;
  }

  bool operator==(const Loc &O) const {
    return IsReg == O.IsReg && (IsReg ? R == O.R : Slot == O.Slot);
  }

  std::string toString() const {
    if (IsReg)
      return x86::regName(R);
    return "S" + std::to_string(Slot);
  }
};

using Instr = rtl::InstrT<Loc>;
using Function = rtl::FunctionT<Loc>;
using Module = rtl::ModuleT<Loc>;
using AddrMode = rtl::AddrMode<Loc>;

} // namespace ltl
} // namespace ccc

#endif // CASCC_IR_LTL_H
