//===- ir/RTL.h - The RTL and LTL IRs ---------------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RTL: a control-flow graph of three-address instructions over
/// pseudo-registers, built by RTLgen and transformed by Tailcall and
/// Renumber. The instruction type is parameterized over the register
/// representation so LTL (after register Allocation) reuses it with
/// machine locations.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_IR_RTL_H
#define CASCC_IR_RTL_H

#include "ir/Ops.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ccc {
namespace rtl {

/// A load/store addressing mode: a global's address or a register base.
template <typename RegT> struct AddrMode {
  enum class Kind { Global, Base };
  Kind K = Kind::Global;
  std::string Global;
  RegT Base{};

  static AddrMode global(std::string Name) {
    AddrMode A;
    A.K = Kind::Global;
    A.Global = std::move(Name);
    return A;
  }
  static AddrMode base(RegT R) {
    AddrMode A;
    A.K = Kind::Base;
    A.Base = R;
    return A;
  }
};

/// One CFG instruction. S1 is the successor node (S2 the false branch of
/// Cond).
template <typename RegT> struct InstrT {
  enum class Kind { Nop, Op, Load, Store, Call, Tailcall, Cond, Return,
                    Print };

  Kind K = Kind::Nop;
  // Op:
  ir::Oper O = ir::Oper::Intconst;
  ir::Cmp C = ir::Cmp::Eq;
  int32_t Imm = 0;
  std::string Global; // Addrglobal operand
  // General:
  std::vector<RegT> Args;
  RegT Dst{};
  bool HasDst = false;
  AddrMode<RegT> AM;
  std::string Callee;
  bool CondOneArg = false;
  bool HasArg = false; // Return with a value
  unsigned S1 = 0, S2 = 0;
};

template <typename RegT> struct FunctionT {
  std::string Name;
  bool RetVoid = true;
  unsigned NumParams = 0;
  /// Argument homes at entry: registers 0..NumParams-1 for RTL; the
  /// allocator's chosen locations for LTL.
  std::vector<RegT> ParamHomes;
  unsigned NumRegs = 0; ///< pseudo-register count (RTL only)
  unsigned NumSlots = 0; ///< spill slot count (LTL onward)
  unsigned Entry = 0;
  std::map<unsigned, InstrT<RegT>> Graph;
};

template <typename RegT> struct ModuleT {
  std::vector<std::pair<std::string, int32_t>> Globals;
  std::vector<FunctionT<RegT>> Funcs;

  const FunctionT<RegT> *find(const std::string &Name) const {
    for (const auto &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

/// RTL proper: pseudo-registers are dense unsigned ids.
using Reg = unsigned;
using Instr = InstrT<Reg>;
using Function = FunctionT<Reg>;
using Module = ModuleT<Reg>;

} // namespace rtl
} // namespace ccc

#endif // CASCC_IR_RTL_H
