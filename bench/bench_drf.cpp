//===- bench/bench_drf.cpp - E2: race detection cost (Fig. 9 / Sec. 5) -----===//
//
// Measures the cost of the Race-rule exploration (Fig. 9) as thread count
// and per-thread work grow, and the state-space reduction obtained by
// checking races in the non-preemptive semantics instead (NPDRF) — the
// practical payoff of the paper's reduction.
//
// Expected shape: the non-preemptive state space is orders of magnitude
// smaller and the gap widens with thread count and program size.
//
//===----------------------------------------------------------------------===//

#include "BenchTable.h"
#include "analysis/RaceDetector.h"
#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace ccc;

namespace {

/// Measures the static-certifier fast path (analysis/RaceDetector.h)
/// against full preemptive exploration on the workload families: when the
/// certificate holds, the exploration is skipped outright and its entire
/// state count is avoided.
bool benchStaticFastPath() {
  std::printf("\nStatic lockset certifier vs. Fig. 9 exploration\n\n");

  struct FamilyRow {
    const char *Name;
    std::function<Program()> Make;
  };
  const FamilyRow Families[] = {
      {"locked t=2", [] { return workload::lockedCounter(2, 1, 0); }},
      {"locked t=3", [] { return workload::lockedCounter(3, 1, 0); }},
      {"locked cs=3", [] { return workload::lockedCounter(2, 1, 3); }},
      {"racy t=2", [] { return workload::racyCounter(2); }},
      {"atomic t=2", [] { return workload::atomicCounter(2, 5); }},
      {"atomic t=3", [] { return workload::atomicCounter(3, 5); }},
      {"clight locked", [] { return workload::clightLockedCounter(2); }},
  };

  benchtable::Table T({"family", "verdict", "static ms", "explore states",
                       "explore ms", "fast path", "speedup"});
  bool Sound = true;
  for (const FamilyRow &F : Families) {
    Program P = F.Make();
    analysis::DetectResult D = analysis::detectRaces(P);

    // For the speedup/states-avoided columns, run the exploration the
    // fast path skipped.
    std::size_t ExpStates = D.ExploredStates;
    double ExpMs = D.ExploreMs;
    bool DynRace = D.Witness.has_value();
    if (D.FastPath) {
      Program Q = F.Make();
      benchtable::Timer TE;
      Explorer<World> E;
      E.build(World::load(Q));
      DynRace = E.findRace().has_value();
      ExpMs = TE.ms();
      ExpStates = E.numStates();
    }

    // Soundness: a certificate must never coexist with a dynamic race.
    if (D.Static.certified() && DynRace)
      Sound = false;

    char Speedup[32];
    if (D.FastPath && D.StaticMs > 0.0)
      std::snprintf(Speedup, sizeof(Speedup), "%.0fx", ExpMs / D.StaticMs);
    else
      std::snprintf(Speedup, sizeof(Speedup), "-");
    T.addRow({F.Name, analysis::verdictName(D.Static.Verdict),
              benchtable::fmtMs(D.StaticMs), std::to_string(ExpStates),
              benchtable::fmtMs(ExpMs), D.FastPath ? "fired" : "fallback",
              Speedup});
  }
  T.print();
  std::printf("\n'fired' rows skip preemptive exploration entirely: the "
              "listed state count is avoided at the cost of 'static ms'.\n");
  return Sound;
}

} // namespace

int main() {
  std::printf("E2 (Fig. 9): DRF checking — preemptive vs non-preemptive "
              "state spaces\n\n");

  benchtable::Table T({"threads", "work", "pre states", "pre ms",
                       "np states", "np ms", "reduction"});
  bool AllGood = true;
  for (unsigned Threads = 2; Threads <= 3; ++Threads) {
    for (unsigned Work : {1u, 3u, 5u, 8u}) {
      Program P1 = workload::atomicCounter(Threads, Work);
      benchtable::Timer T1;
      Explorer<World> EP;
      EP.build(World::load(P1));
      bool PreRace = EP.findRace().has_value();
      double PreMs = T1.ms();

      Program P2 = workload::atomicCounter(Threads, Work);
      benchtable::Timer T2;
      Explorer<NPWorld> EN;
      EN.build(NPWorld::loadAll(P2));
      bool NpRace = EN.findRace().has_value();
      double NpMs = T2.ms();

      AllGood = AllGood && !PreRace && !NpRace;
      double Ratio = EN.numStates()
                         ? static_cast<double>(EP.numStates()) /
                               static_cast<double>(EN.numStates())
                         : 0.0;
      char RatioBuf[32];
      std::snprintf(RatioBuf, sizeof(RatioBuf), "%.1fx", Ratio);
      T.addRow({std::to_string(Threads), std::to_string(Work),
                std::to_string(EP.numStates()), benchtable::fmtMs(PreMs),
                std::to_string(EN.numStates()), benchtable::fmtMs(NpMs),
                RatioBuf});
    }
  }
  T.print();

  bool StaticSound = benchStaticFastPath();
  AllGood = AllGood && StaticSound;

  std::printf("\nresult: %s — all programs DRF under both detectors, the "
              "non-preemptive reduction shrinks the explored state space, "
              "and the static fast path never certifies a racy program\n",
              AllGood ? "PASS" : "FAIL");
  return AllGood ? 0 : 1;
}
