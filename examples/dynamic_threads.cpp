//===- examples/dynamic_threads.cpp - Thread spawn (future-work ext.) ------===//
//
// The paper's Sec. 8 sketches thread spawn as future work: "The spawn
// step in the operational semantics needs to assign a new F to each newly
// created thread." This example exercises the implemented extension: a
// coordinator spawns workers dynamically; the workers synchronize on the
// lock object; DRF, the preemptive/non-preemptive equivalence, and the
// exactness of the final counter all hold.
//
//===----------------------------------------------------------------------===//

#include "cimp/CImpLang.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"

#include <cstdio>

using namespace ccc;

int main() {
  std::printf("Dynamic thread creation\n");
  std::printf("=======================\n\n");

  const char *Client = R"(
    global x = 0;
    global done = 0;

    worker(k) {
      lock();
      v := [x];
      [x] := v + k;
      d := [done];
      [done] := d + 1;
      unlock();
    }

    main() {
      spawn worker(1);
      spawn worker(2);
      finished := 0;
      while (finished < 2) {
        lock();
        finished := [done];
        unlock();
      }
      lock();
      v := [x];
      unlock();
      print(v);
    }
  )";
  std::printf("client (CImp):\n%s\n", Client);

  Program P;
  cimp::addCImpModule(P, "client", Client);
  sync::addGammaLock(P);
  P.addThread("main");
  P.link();

  bool Drf = isDRF(P);
  ExploreStats PreS, NpS;
  TraceSet Pre = preemptiveTraces(P, {}, &PreS);
  TraceSet Np = nonPreemptiveTraces(P, {}, &NpS);
  RefineResult Equiv = equivTraces(Pre, Np);

  std::printf("DRF                         : %s\n", Drf ? "yes" : "no");
  std::printf("preemptive states           : %zu\n", PreS.States);
  std::printf("non-preemptive states       : %zu\n", NpS.States);
  std::printf("preemptive == non-preemptive: %s\n",
              Equiv.Holds ? "yes" : "no");

  // Every terminating trace prints exactly 3 = 1 + 2: no update is lost.
  bool Exact = true;
  for (const Trace &Tr : Pre.traces()) {
    if (Tr.End != TraceEnd::Done)
      continue;
    if (Tr.Events != std::vector<int64_t>{3})
      Exact = false;
  }
  std::printf("final counter always 3      : %s\n", Exact ? "yes" : "no");
  std::printf("traces: %s\n", Pre.toString().c_str());

  bool Ok = Drf && Equiv.Holds && Exact;
  std::printf("\n%s\n", Ok ? "All checks passed." : "CHECKS FAILED.");
  return Ok ? 0 : 1;
}
