//===- tests/MixedModelTest.cpp - Heterogeneous-model linked programs ------===//
//
// The program/link layer of the memory-model axis: one linked Program
// holding an SC Clight observer, an x86-TSO SB pair, and an x86-Relaxed
// LB pair. The linker and explorer are model-agnostic — each module
// contributes the LocalSteps its own model licenses — so both weak
// wedges (SB's both-zero through the store buffer, LB's both-one through
// the pending loads) appear in the same exploration, POR stays exact
// across the mix, and the repair pipeline brings every module back to
// certified-SC.
//
//===----------------------------------------------------------------------===//

#include "analysis/FenceSynth.h"
#include "analysis/Robustness.h"
#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ccc;
using namespace ccc::analysis;

namespace {

/// True when some complete trace's event multiset contains all of \p Ev.
bool someTraceContains(const TraceSet &T, std::vector<int64_t> Ev) {
  for (const Trace &Tr : T.traces()) {
    bool All = true;
    for (int64_t E : Ev) {
      if (std::count(Tr.Events.begin(), Tr.Events.end(), E) <
          std::count(Ev.begin(), Ev.end(), E)) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

} // namespace

// The declared models survive linking: one SC Clight module plus two x86
// modules under different models, and the robustness report sees each
// x86 module under its own model.
TEST(MixedModel, DeclaredModelsSurviveLinking) {
  Program P = workload::mixedModelProgram(false);
  ASSERT_EQ(P.modules().size(), 3u);
  EXPECT_EQ(P.modules()[0].Lang->memModel(), MemModel::SC);
  EXPECT_EQ(P.modules()[1].Lang->memModel(), MemModel::TSO);
  EXPECT_EQ(P.modules()[2].Lang->memModel(), MemModel::Relaxed);

  ProgramRobustReport R = programRobustness(P);
  ASSERT_EQ(R.Modules.size(), 2u);
  for (const ModuleRobustInfo &M : R.Modules) {
    EXPECT_EQ(M.Report.inconsistency(), "") << M.Report.toString();
    if (M.Name == "sbmod") {
      EXPECT_EQ(M.Model, MemModel::TSO);
    }
    if (M.Name == "lbmod") {
      EXPECT_EQ(M.Model, MemModel::Relaxed);
    }
    EXPECT_FALSE(M.Report.robust()) << M.Name;
  }
}

// Both weak wedges are reachable in one exploration of the unfenced mix:
// the TSO module's both-zero SB outcome and the Relaxed module's
// both-one LB outcome — even jointly in a single trace — while the
// fenced sibling shows neither.
TEST(MixedModel, BothWeakWedgesInOneProgram) {
  TraceSet T = preemptiveTraces(workload::mixedModelProgram(false));
  EXPECT_TRUE(someTraceContains(T, {100, 200}));
  EXPECT_TRUE(someTraceContains(T, {11, 21}));
  EXPECT_TRUE(someTraceContains(T, {100, 200, 11, 21}));

  TraceSet F = preemptiveTraces(workload::mixedModelProgram(true));
  EXPECT_FALSE(someTraceContains(F, {100, 200}));
  EXPECT_FALSE(someTraceContains(F, {11, 21}));
}

// POR on and off agree bit-exactly on the heterogeneous program: the
// independence analysis must stay sound when store-buffer effects (TSO)
// and pending-load effects (Relaxed) coexist with SC steps. The fenced
// mix keeps this affordable here; bench_tso hard-gates the (much larger)
// unfenced exploration the same way.
TEST(MixedModel, PorExactAcrossModels) {
  Program P1 = workload::mixedModelProgram(true);
  Program P2 = workload::mixedModelProgram(true);
  ExploreOptions Full;
  Full.Por = PorMode::Off;
  ExploreStats SPor, SFull;
  TraceSet Por = preemptiveTraces(P1, {}, &SPor);
  TraceSet FullT = preemptiveTraces(P2, Full, &SFull);
  EXPECT_EQ(Por == FullT, true);
  EXPECT_LE(SPor.States, SFull.States);
}

// The repair pipeline on the mix: both weak modules are repaired under
// their own models, every module ends on SC, and the weak wedges are
// gone from the repaired exploration.
TEST(MixedModel, RepairPipelineCoversBothModels) {
  Program P = workload::mixedModelProgram(false);
  ProgramRepairReport Rep;
  unsigned Switched = repairAndApplyScFastPath(P, &Rep);
  EXPECT_EQ(Rep.ModulesRepaired, 2u) << Rep.toString();
  EXPECT_EQ(Switched, 2u);
  for (const ModuleDecl &D : P.modules())
    EXPECT_EQ(D.Lang->memModel(), MemModel::SC) << D.Name;
  EXPECT_TRUE(programRobustness(P).allRobust());

  TraceSet T = preemptiveTraces(P);
  EXPECT_FALSE(someTraceContains(T, {100, 200}));
  EXPECT_FALSE(someTraceContains(T, {11, 21}));
}

// The fenced mix certifies Robust module-by-module, each under its own
// declared model, and the SC switch then preserves the trace set.
TEST(MixedModel, FencedMixCertifiesAndSwitches) {
  Program P = workload::mixedModelProgram(true);
  ProgramRobustReport R = programRobustness(P);
  EXPECT_TRUE(R.allRobust()) << R.toString();
  EXPECT_TRUE(R.anyScSwitchable());

  Program Q = workload::mixedModelProgram(true);
  TraceSet Before = preemptiveTraces(Q);
  EXPECT_EQ(switchRobustToSc(Q, R), 2u);
  EXPECT_EQ(preemptiveTraces(Q) == Before, true);
}
