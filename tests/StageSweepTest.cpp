//===- tests/StageSweepTest.cpp - wd/det/sim sweeps over the pipeline ------===//
//
// Parameterized sweeps discharging the framework's language-level side
// conditions on every IR of the pipeline (Theorem 12's premises wd(sl),
// wd(tl), det(tl)) and the per-pass simulation (Correct, Def. 10), over
// several client programs.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "validate/PassValidator.h"
#include "validate/Sim.h"
#include "validate/Wd.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::validate;

namespace {

struct Scenario {
  const char *Name;
  const char *Source;
  const char *Entry;
};

const Scenario Scenarios[] = {
    {"straightline",
     "int g = 2; void main() { int a = 5; g = g * a; print(g + a); }",
     "main"},
    {"branching",
     "void main() { int a = 4; if (a % 2 == 0) { print(a); } else { "
     "print(-a); } while (a > 0) { a = a - 1; } print(a); }",
     "main"},
    {"functions",
     "int dbl(int x) { return x + x; } void main() { int v; v = dbl(8); "
     "print(v); }",
     "main"},
    {"externs",
     "extern void lock(); extern void unlock(); int x = 0; void main() { "
     "lock(); x = x + 1; unlock(); print(x); }",
     "main"},
};

struct SweepParam {
  int ScenarioIdx;
  unsigned Stage;
};

std::string sweepName(const ::testing::TestParamInfo<SweepParam> &Info) {
  std::string Stage = compiler::stageName(Info.param.Stage);
  for (char &C : Stage)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return std::string(Scenarios[Info.param.ScenarioIdx].Name) + "_" + Stage;
}

class StageSweep : public ::testing::TestWithParam<SweepParam> {};

} // namespace

TEST_P(StageSweep, LanguageIsWellDefined) {
  const Scenario &Sc = Scenarios[GetParam().ScenarioIdx];
  auto R = compiler::compileClightSource(Sc.Source);
  Program P;
  unsigned Mod = compiler::addStage(P, R, GetParam().Stage, "m");
  P.link();
  CheckReport Rep = wdCheck(P, Mod, Sc.Entry, {});
  EXPECT_TRUE(Rep.Ok) << compiler::stageName(GetParam().Stage) << ": "
                      << (Rep.Violations.empty() ? "" : Rep.Violations[0]);
  EXPECT_GT(Rep.StatesChecked, 0u);
}

TEST_P(StageSweep, LanguageIsDeterministic) {
  const Scenario &Sc = Scenarios[GetParam().ScenarioIdx];
  auto R = compiler::compileClightSource(Sc.Source);
  Program P;
  unsigned Mod = compiler::addStage(P, R, GetParam().Stage, "m");
  P.link();
  CheckReport Rep = detCheck(P, Mod, Sc.Entry, {});
  EXPECT_TRUE(Rep.Ok) << compiler::stageName(GetParam().Stage);
}

TEST_P(StageSweep, ModuleIsReachClosed) {
  const Scenario &Sc = Scenarios[GetParam().ScenarioIdx];
  auto R = compiler::compileClightSource(Sc.Source);
  Program P;
  unsigned Mod = compiler::addStage(P, R, GetParam().Stage, "m");
  P.link();
  CheckReport Rep = reachCloseCheck(P, Mod, Sc.Entry, {});
  EXPECT_TRUE(Rep.Ok) << compiler::stageName(GetParam().Stage) << ": "
                      << (Rep.Violations.empty() ? "" : Rep.Violations[0]);
}

namespace {
std::vector<SweepParam> allSweepParams() {
  std::vector<SweepParam> Out;
  for (int S = 0; S < 4; ++S)
    for (unsigned Stage = 0; Stage < compiler::numStages(); ++Stage)
      Out.push_back({S, Stage});
  return Out;
}
} // namespace

INSTANTIATE_TEST_SUITE_P(AllStages, StageSweep,
                         ::testing::ValuesIn(allSweepParams()), sweepName);

// ---------------------------------------------------------------------------
// Per-pass simulation sweep (Def. 10 for every pass x scenario).
// ---------------------------------------------------------------------------

namespace {

struct PassParam {
  int ScenarioIdx;
  unsigned Pass; // 0..11: stage Pass -> Pass+1
};

std::string passName(const ::testing::TestParamInfo<PassParam> &Info) {
  return std::string(Scenarios[Info.param.ScenarioIdx].Name) + "_" +
         compiler::passNames()[Info.param.Pass];
}

class PassSweep : public ::testing::TestWithParam<PassParam> {};

} // namespace

TEST_P(PassSweep, SimulationHolds) {
  const Scenario &Sc = Scenarios[GetParam().ScenarioIdx];
  auto R = compiler::compileClightSource(Sc.Source);
  Program Src, Tgt;
  unsigned SM = compiler::addStage(Src, R, GetParam().Pass, "m");
  unsigned TM = compiler::addStage(Tgt, R, GetParam().Pass + 1, "m");
  Src.link();
  Tgt.link();
  SimReport Rep = simCheck(Src, SM, Tgt, TM, Sc.Entry, {});
  EXPECT_TRUE(Rep.Holds)
      << compiler::passNames()[GetParam().Pass] << ": " << Rep.FailReason;
}

namespace {
std::vector<PassParam> allPassParams() {
  std::vector<PassParam> Out;
  for (int S = 0; S < 4; ++S)
    for (unsigned Pass = 0; Pass < 12; ++Pass)
      Out.push_back({S, Pass});
  return Out;
}
} // namespace

INSTANTIATE_TEST_SUITE_P(AllPasses, PassSweep,
                         ::testing::ValuesIn(allPassParams()), passName);

// ---------------------------------------------------------------------------
// Transitivity (Lemma 5) spot checks: stage i simulates stage k directly.
// ---------------------------------------------------------------------------

TEST(SimTransitivity, ClightSimulatedByDistantStages) {
  auto R = compiler::compileClightSource(Scenarios[0].Source);
  for (unsigned Stage : {4u, 7u, 12u}) {
    Program Src, Tgt;
    unsigned SM = compiler::addStage(Src, R, 0, "m");
    unsigned TM = compiler::addStage(Tgt, R, Stage, "m");
    Src.link();
    Tgt.link();
    SimReport Rep = simCheck(Src, SM, Tgt, TM, "main", {});
    EXPECT_TRUE(Rep.Holds)
        << "Clight -> " << compiler::stageName(Stage) << ": "
        << Rep.FailReason;
  }
}
