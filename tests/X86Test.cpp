//===- tests/X86Test.cpp - x86-SC and x86-TSO machine tests ---------------===//
//
// Exercises the x86 instantiation: parsing, SC execution, the TSO store
// buffer (store-buffering litmus test, mfence), and the pi_lock object of
// Fig. 10(b) against the gamma_lock specification.
//
//===----------------------------------------------------------------------===//

#include "cimp/CImpLang.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"
#include "x86/X86Lang.h"
#include "x86/X86Parser.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::x86;

namespace {

Trace doneTrace(std::vector<int64_t> Events) {
  return Trace{std::move(Events), TraceEnd::Done};
}

Program asmProgram(const std::string &Src, std::vector<std::string> Entries,
                   MemModel Model) {
  Program P;
  addAsmModule(P, "m", Src, Model);
  for (auto &E : Entries)
    P.addThread(E);
  P.link();
  return P;
}

const char *SBLitmus = R"(
  .data x 0
  .data y 0
  .entry t1 0 0
  .entry t2 0 0
  t1:
          movl $1, x
          movl y, %eax
          printl %eax
          retl
  t2:
          movl $1, y
          movl x, %ebx
          printl %ebx
          retl
)";

const char *SBLitmusFenced = R"(
  .data x 0
  .data y 0
  .entry t1 0 0
  .entry t2 0 0
  t1:
          movl $1, x
          mfence
          movl y, %eax
          printl %eax
          retl
  t2:
          movl $1, y
          mfence
          movl x, %ebx
          printl %ebx
          retl
)";

} // namespace

TEST(X86Parser, ParsesPiLock) {
  std::string Err;
  auto M = parseAsm(sync::piLockSource(), Err);
  ASSERT_NE(M, nullptr) << Err;
  EXPECT_EQ(M->Entries.count("lock"), 1u);
  EXPECT_EQ(M->Entries.count("unlock"), 1u);
  ASSERT_EQ(M->Globals.size(), 1u);
  EXPECT_EQ(M->Globals[0].first, "L");
  EXPECT_EQ(M->Globals[0].second, 1);
  EXPECT_TRUE(M->label("spin").has_value());
}

TEST(X86Parser, RejectsUnknownTarget) {
  std::string Err;
  auto M = parseAsm(".entry f 0 0\nf:\n jmp nowhere\n", Err);
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Err.find("nowhere"), std::string::npos);
}

TEST(X86Parser, RoundTripsThroughPrinter) {
  std::string Err;
  auto M = parseAsm(sync::piLockSource(), Err);
  ASSERT_NE(M, nullptr) << Err;
  auto M2 = parseAsm(M->toString(), Err);
  ASSERT_NE(M2, nullptr) << Err;
  EXPECT_EQ(M->Code.size(), M2->Code.size());
  EXPECT_EQ(M->toString(), M2->toString());
}

TEST(X86SC, StraightLineArithmetic) {
  Program P = asmProgram(R"(
    .entry main 0 0
    main:
            movl $6, %eax
            movl $7, %ebx
            imull %ebx, %eax
            printl %eax
            subl $2, %eax
            printl %eax
            movl $100, %ecx
            divl %ebx, %ecx
            printl %ecx
            retl
  )",
                         {"main"}, MemModel::SC);
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({42, 40, 14})));
}

TEST(X86SC, MemoryAndBranches) {
  Program P = asmProgram(R"(
    .data g 5
    .entry main 0 0
    main:
            movl g, %eax
            cmpl $5, %eax
            jne bad
            addl $1, %eax
            movl %eax, g
            movl g, %ebx
            printl %ebx
            retl
    bad:
            printl $999
            retl
  )",
                         {"main"}, MemModel::SC);
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({6})));
}

TEST(X86SC, StackFrameSlots) {
  Program P = asmProgram(R"(
    .entry main 3 0
    main:
            movl $11, 0(%esp)
            movl $22, 1(%esp)
            movl $33, 2(%esp)
            movl 1(%esp), %eax
            printl %eax
            retl
  )",
                         {"main"}, MemModel::SC);
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({22})));
}

TEST(X86SC, SetccMaterializesComparisons) {
  Program P = asmProgram(R"(
    .entry main 0 0
    main:
            movl $3, %eax
            cmpl $5, %eax
            setl %ebx
            printl %ebx
            setge %ecx
            printl %ecx
            retl
  )",
                         {"main"}, MemModel::SC);
  TraceSet T = preemptiveTraces(P);
  EXPECT_TRUE(T.contains(doneTrace({1, 0})));
}

TEST(X86SC, CallPassesArgsAndReturnsInEax) {
  Program P = asmProgram(R"(
    .entry main 0 0
    .entry double 0 1
    main:
            movl $21, %edi
            call double
            printl %eax
            retl
    double:
            movl %edi, %eax
            addl %eax, %eax
            retl
  )",
                         {"main"}, MemModel::SC);
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({42})));
}

TEST(X86SC, JccWithoutFlagsAborts) {
  Program P = asmProgram(R"(
    .entry main 0 0
    main:
            je somewhere
    somewhere:
            retl
  )",
                         {"main"}, MemModel::SC);
  std::string Reason;
  EXPECT_FALSE(isSafe(P, {}, &Reason));
  EXPECT_NE(Reason.find("flags"), std::string::npos);
}

TEST(X86TSO, StoreBufferingAllowsBothZero) {
  Program SC = asmProgram(SBLitmus, {"t1", "t2"}, MemModel::SC);
  Program TSO = asmProgram(SBLitmus, {"t1", "t2"}, MemModel::TSO);
  TraceSet TSC = preemptiveTraces(SC);
  TraceSet TTSO = preemptiveTraces(TSO);

  // Under SC at least one thread observes the other's store.
  EXPECT_FALSE(TSC.contains(doneTrace({0, 0})));
  // Under TSO both loads may read 0: the relaxed behavior.
  EXPECT_TRUE(TTSO.contains(doneTrace({0, 0})));
  // TSO is a superset of SC behaviors here.
  EXPECT_TRUE(refinesTraces(TSC, TTSO).Holds);
}

TEST(X86TSO, MfenceRestoresSC) {
  Program SC = asmProgram(SBLitmusFenced, {"t1", "t2"}, MemModel::SC);
  Program TSO = asmProgram(SBLitmusFenced, {"t1", "t2"}, MemModel::TSO);
  TraceSet TSC = preemptiveTraces(SC);
  TraceSet TTSO = preemptiveTraces(TSO);
  EXPECT_FALSE(TTSO.contains(doneTrace({0, 0})));
  RefineResult R = equivTraces(TSC, TTSO);
  EXPECT_TRUE(R.Holds) << R.CounterExample;
}

TEST(X86TSO, SBLitmusIsRacyAndRacesAreOnSharedData) {
  Program TSO = asmProgram(SBLitmus, {"t1", "t2"}, MemModel::TSO);
  auto Race = findDataRace(TSO);
  ASSERT_TRUE(Race.has_value());
}

namespace {

/// The Fig. 10(c) client, hand-written in our assembly subset.
const char *IncClient = R"(
  .data x 0
  .entry inc 0 0
  .extern lock 0
  .extern unlock 0
  inc:
          call lock
          movl x, %ebx
          movl %ebx, %ecx
          addl $1, %ecx
          movl %ecx, x
          call unlock
          printl %ebx
          retl
)";

Program incWithPiLock(MemModel Model, unsigned Threads) {
  Program P;
  addAsmModule(P, "client", IncClient, Model);
  sync::addPiLock(P, Model);
  for (unsigned I = 0; I < Threads; ++I)
    P.addThread("inc");
  P.link();
  return P;
}

Program incWithGammaLockCImp(unsigned Threads) {
  Program P;
  cimp::addCImpModule(P, "client", R"(
    global x = 0;
    inc() { lock(); tmp := [x]; [x] := tmp + 1; unlock(); print(tmp); }
  )");
  sync::addGammaLock(P);
  for (unsigned I = 0; I < Threads; ++I)
    P.addThread("inc");
  P.link();
  return P;
}

} // namespace

TEST(X86TSO, PiLockMutualExclusionUnderTSO) {
  Program P = incWithPiLock(MemModel::TSO, 2);
  TraceSet T = preemptiveTraces(P);
  EXPECT_FALSE(T.hasAbort());
  EXPECT_TRUE(T.contains(doneTrace({0, 1})));
  EXPECT_TRUE(T.contains(doneTrace({1, 0})));
  for (const Trace &Tr : T.traces()) {
    if (Tr.End != TraceEnd::Done)
      continue;
    EXPECT_TRUE((Tr.Events == std::vector<int64_t>{0, 1}) ||
                (Tr.Events == std::vector<int64_t>{1, 0}))
        << Tr.toString();
  }
}

TEST(X86TSO, PiLockHasConfinedBenignRacesOnly) {
  Program P = incWithPiLock(MemModel::SC, 2);
  // Races exist (spin read vs. releasing store on L) ...
  Explorer<World> E;
  E.build(World::load(P));
  auto Races = E.findRacesConfinedTo(P.objectAddrs());
  ASSERT_FALSE(Races.empty());
  // ... but every race is confined to the object's data (benign).
  for (const RaceWitness &R : Races)
    EXPECT_TRUE(R.Confined)
        << R.FP1.FP.toString() << " vs " << R.FP2.FP.toString();
}

TEST(X86TSO, PiLockTsoRefinesGammaLockSpec) {
  // Lemma 16 checked empirically on the inc/inc client: the x86-TSO
  // program with pi_lock refines (termination-insensitively) the same
  // client with the abstract gamma_lock under SC. The clients differ in
  // language (asm vs CImp) but produce the same observable events.
  Program Impl = incWithPiLock(MemModel::TSO, 2);
  Program Spec = incWithGammaLockCImp(2);
  TraceSet TImpl = preemptiveTraces(Impl);
  TraceSet TSpec = preemptiveTraces(Spec);
  RefineResult R =
      refinesTraces(TImpl, TSpec, /*TermInsensitive=*/true);
  EXPECT_TRUE(R.Holds) << "counterexample: " << R.CounterExample;
}

TEST(X86TSO, UnfencedObjectWouldBreakWithoutConfinement) {
  // Control experiment: a "lock" that does not use an atomic instruction
  // is not a correct lock; mutual exclusion fails and the counter client
  // can print 0 twice.
  const char *BadLock = R"(
    .data L 1
    .entry lock 0 0
    .entry unlock 0 0
    lock:
    spin:
            movl L, %eax
            cmpl $0, %eax
            je spin
            movl $0, L
            retl
    unlock:
            movl $1, L
            retl
  )";
  Program P;
  addAsmModule(P, "client", IncClient, MemModel::SC);
  addAsmModule(P, "lockimpl", BadLock, MemModel::SC, /*ObjectMode=*/true);
  P.addThread("inc");
  P.addThread("inc");
  P.link();
  TraceSet T = preemptiveTraces(P);
  EXPECT_TRUE(T.contains(doneTrace({0, 0})));
}

TEST(X86TSO, ObjectModeConfinesMemoryAccesses) {
  // An object module touching client data aborts.
  const char *EvilObj = R"(
    .data L 1
    .entry lock 0 0
    .entry unlock 0 0
    .extern clientdata 0
    lock:
            retl
    unlock:
            retl
  )";
  (void)EvilObj;
  // Reaching client globals requires a pointer; pass one through a call.
  const char *Obj = R"(
    .data L 1
    .entry poke 0 1
    poke:
            movl $7, (%edi)
            retl
  )";
  const char *Client = R"(
    .data c 0
    .entry main 0 0
    .extern poke 1
    main:
            movl $c, %edi
            call poke
            retl
  )";
  Program P;
  addAsmModule(P, "client", Client, MemModel::SC);
  addAsmModule(P, "obj", Obj, MemModel::SC, /*ObjectMode=*/true);
  P.addThread("main");
  P.link();
  std::string Reason;
  EXPECT_FALSE(isSafe(P, {}, &Reason));
}
