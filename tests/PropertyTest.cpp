//===- tests/PropertyTest.cpp - Property sweeps over program families ------===//
//
// Parameterized property-style tests of the framework's metatheory over
// generated program families:
//  - Lemma 9: preemptive == non-preemptive trace sets for DRF programs;
//  - Sec. 5: DRF <=> NPDRF;
//  - the non-preemptive reduction never enlarges the state space;
//  - racy controls are caught by both detectors;
//  - safety: lock-synchronized counters never abort and always print a
//    permutation of the observed values.
//
//===----------------------------------------------------------------------===//

#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ccc;

namespace {

struct FamilyParam {
  const char *Kind; // "locked" | "atomic"
  unsigned Threads;
  unsigned A; // increments / work
  unsigned B; // cs-extra / unused
};

Program build(const FamilyParam &P) {
  if (std::string(P.Kind) == "locked")
    return workload::lockedCounter(P.Threads, P.A, P.B);
  return workload::atomicCounter(P.Threads, P.A);
}

std::string paramName(const ::testing::TestParamInfo<FamilyParam> &Info) {
  return std::string(Info.param.Kind) + "_t" +
         std::to_string(Info.param.Threads) + "_a" +
         std::to_string(Info.param.A) + "_b" +
         std::to_string(Info.param.B);
}

class DrfFamilyTest : public ::testing::TestWithParam<FamilyParam> {};

} // namespace

TEST_P(DrfFamilyTest, IsDRFUnderBothSemantics) {
  Program P = build(GetParam());
  EXPECT_TRUE(isDRF(P));
  EXPECT_TRUE(isNPDRF(P));
}

TEST_P(DrfFamilyTest, PreemptiveEqualsNonPreemptive) {
  Program P = build(GetParam());
  TraceSet Pre = preemptiveTraces(P);
  TraceSet Np = nonPreemptiveTraces(P);
  RefineResult R = equivTraces(Pre, Np);
  EXPECT_TRUE(R.Holds) << "cex: " << R.CounterExample;
  EXPECT_TRUE(R.Definitive);
}

TEST_P(DrfFamilyTest, NonPreemptiveNeverExploresMore) {
  Program P = build(GetParam());
  // The claim is about the full graphs: POR would shrink the preemptive
  // side below the non-preemptive count and invert the comparison.
  ExploreOptions Full;
  Full.Por = PorMode::Off;
  ExploreStats PreS, NpS;
  (void)preemptiveTraces(P, Full, &PreS);
  (void)nonPreemptiveTraces(P, Full, &NpS);
  EXPECT_LE(NpS.States, PreS.States);
}

TEST_P(DrfFamilyTest, NeverAborts) {
  Program P = build(GetParam());
  EXPECT_TRUE(isSafe(P));
}

INSTANTIATE_TEST_SUITE_P(
    Families, DrfFamilyTest,
    ::testing::Values(FamilyParam{"locked", 2, 1, 0},
                      FamilyParam{"locked", 2, 1, 1},
                      FamilyParam{"locked", 2, 1, 3},
                      FamilyParam{"locked", 2, 2, 0},
                      FamilyParam{"locked", 3, 1, 0},
                      FamilyParam{"atomic", 2, 1, 0},
                      FamilyParam{"atomic", 2, 3, 0},
                      FamilyParam{"atomic", 2, 6, 0},
                      FamilyParam{"atomic", 3, 1, 0},
                      FamilyParam{"atomic", 3, 4, 0}),
    paramName);

namespace {
class RacyFamilyTest : public ::testing::TestWithParam<unsigned> {};
} // namespace

TEST_P(RacyFamilyTest, BothDetectorsAgreeOnRacy) {
  Program P = workload::racyCounter(GetParam());
  EXPECT_FALSE(isDRF(P));
  EXPECT_FALSE(isNPDRF(P));
}

INSTANTIATE_TEST_SUITE_P(Threads, RacyFamilyTest,
                         ::testing::Values(2u, 3u));

TEST(LockedCounterProperties, PrintsArePermutations) {
  // Every terminating trace of the N-thread 1-increment counter prints
  // exactly the values 0..N-1 (each increment observes a distinct value).
  for (unsigned Threads : {2u, 3u}) {
    Program P = workload::lockedCounter(Threads, 1, 0);
    TraceSet T = preemptiveTraces(P);
    ASSERT_FALSE(T.hasAbort());
    bool SawDone = false;
    for (const Trace &Tr : T.traces()) {
      if (Tr.End != TraceEnd::Done)
        continue;
      SawDone = true;
      std::vector<int64_t> Sorted = Tr.Events;
      std::sort(Sorted.begin(), Sorted.end());
      std::vector<int64_t> Expect;
      for (unsigned I = 0; I < Threads; ++I)
        Expect.push_back(I);
      EXPECT_EQ(Sorted, Expect) << Tr.toString();
    }
    EXPECT_TRUE(SawDone);
  }
}

TEST(LockedCounterProperties, MultiIncrementTotalsAreExact) {
  // 2 threads x 2 increments: 4 prints; the multiset of printed values
  // must be {0,1,2,3} in every terminating trace.
  Program P = workload::lockedCounter(2, 2, 0);
  TraceSet T = preemptiveTraces(P);
  ASSERT_FALSE(T.hasAbort());
  for (const Trace &Tr : T.traces()) {
    if (Tr.End != TraceEnd::Done)
      continue;
    std::vector<int64_t> Sorted = Tr.Events;
    std::sort(Sorted.begin(), Sorted.end());
    EXPECT_EQ(Sorted, (std::vector<int64_t>{0, 1, 2, 3})) << Tr.toString();
  }
}

TEST(LockedCounterProperties, RacyCounterCanLoseUpdates) {
  // The unsynchronized counter admits the lost-update outcome (both
  // threads print 0) — the reason the lock exists.
  Program P = workload::racyCounter(2);
  TraceSet T = preemptiveTraces(P);
  EXPECT_TRUE(T.contains(Trace{{0, 0}, TraceEnd::Done}));
}

TEST(CrossLanguageClients, CImpAndClightClientsAgree) {
  // The same counter protocol written in CImp and in Clight produces the
  // same observable behavior against the same lock object.
  TraceSet A = preemptiveTraces(workload::lockedCounter(2, 1, 0));
  TraceSet B = preemptiveTraces(workload::clightLockedCounter(2));
  RefineResult R = equivTraces(A, B);
  EXPECT_TRUE(R.Holds) << R.CounterExample;
}

TEST(CrossLanguageClients, AsmClientAgreesUnderSC) {
  TraceSet A = preemptiveTraces(workload::lockedCounter(2, 1, 0));
  TraceSet B = preemptiveTraces(
      workload::asmCounterWithPiLock(x86::MemModel::SC, 2));
  // pi_lock adds divergence traces under unfair schedules but the same
  // terminating behaviors.
  RefineResult R =
      refinesTraces(B.collapseTermination(), A.collapseTermination());
  EXPECT_TRUE(R.Holds) << R.CounterExample;
}

TEST(TsoProperties, TsoIsASupersetOfScBehaviors) {
  for (bool Fenced : {false, true}) {
    TraceSet Sc =
        preemptiveTraces(workload::sbLitmus(x86::MemModel::SC, Fenced));
    TraceSet Tso =
        preemptiveTraces(workload::sbLitmus(x86::MemModel::TSO, Fenced));
    RefineResult R = refinesTraces(Sc, Tso);
    EXPECT_TRUE(R.Holds) << "fenced=" << Fenced << " cex "
                         << R.CounterExample;
  }
}

TEST(TsoProperties, MessagePassingPreservedByFifoBuffers) {
  TraceSet T = preemptiveTraces(workload::mpLitmus(x86::MemModel::TSO));
  // The receiver, once past the flag, always reads 42 — never stale 0.
  for (const Trace &Tr : T.traces()) {
    for (int64_t E : Tr.Events)
      EXPECT_EQ(E, 42) << Tr.toString();
  }
  EXPECT_TRUE(T.contains(Trace{{42}, TraceEnd::Done}));
}
