//===- tests/FrontendDiagnosticsTest.cpp - Parser diagnostics tests --------===//
//
// Error-path tests for the three textual frontends (CImp, Clight, x86
// assembly): malformed inputs are rejected with positioned messages, and
// accepted inputs survive printer round trips where applicable.
//
//===----------------------------------------------------------------------===//

#include "cimp/CImpParser.h"
#include "clight/ClightParser.h"
#include "x86/X86Parser.h"

#include <gtest/gtest.h>

using namespace ccc;

// --------------------------------------------------------------------------
// CImp
// --------------------------------------------------------------------------

TEST(CImpParserErrors, MissingSemicolon) {
  std::string Err;
  EXPECT_EQ(cimp::parseModule("f() { x := 1 }", Err), nullptr);
  EXPECT_NE(Err.find("line 1"), std::string::npos);
}

TEST(CImpParserErrors, UnterminatedBlock) {
  std::string Err;
  EXPECT_EQ(cimp::parseModule("f() { while (1) { skip;", Err), nullptr);
  EXPECT_NE(Err.find("missing"), std::string::npos);
}

TEST(CImpParserErrors, BadGlobalInitializer) {
  std::string Err;
  EXPECT_EQ(cimp::parseModule("global g = x;", Err), nullptr);
}

TEST(CImpParserErrors, UnexpectedCharacter) {
  std::string Err;
  EXPECT_EQ(cimp::parseModule("f() { x := 1 @ 2; }", Err), nullptr);
  EXPECT_NE(Err.find("unexpected character"), std::string::npos);
}

TEST(CImpParser, AcceptsNegativeGlobalsAndComments) {
  std::string Err;
  auto M = cimp::parseModule(R"(
    # a comment
    global g = -5;  // another comment
    f() { return g == g; }
  )",
                             Err);
  ASSERT_NE(M, nullptr) << Err;
  ASSERT_EQ(M->Globals.size(), 1u);
  EXPECT_EQ(M->Globals[0].second, -5);
}

TEST(CImpParser, PrecedenceParsesAsExpected) {
  std::string Err;
  auto M = cimp::parseModule("f() { x := 1 + 2 * 3 == 7 && 1; }", Err);
  ASSERT_NE(M, nullptr) << Err;
  const cimp::Stmt &S = *M->Funcs[0].Body[0];
  // Top node must be &&.
  ASSERT_EQ(S.E1->K, cimp::Expr::Kind::Bin);
  EXPECT_EQ(S.E1->B, cimp::BinOp::And);
}

// --------------------------------------------------------------------------
// Clight
// --------------------------------------------------------------------------

TEST(ClightParserErrors, LocalsMustPrecedeStatements) {
  std::string Err;
  auto M = clight::parseModule(
      "void f() { print(1); int a; }", Err);
  EXPECT_EQ(M, nullptr);
}

TEST(ClightParserErrors, MissingReturnType) {
  std::string Err;
  EXPECT_EQ(clight::parseModule("f() { }", Err), nullptr);
  EXPECT_NE(Err.find("expected 'int' or 'void'"), std::string::npos);
}

TEST(ClightParserErrors, BadExternDecl) {
  std::string Err;
  EXPECT_EQ(clight::parseModule("extern void g(float x);", Err), nullptr);
}

TEST(ClightParser, ExternArityCounted) {
  std::string Err;
  auto M = clight::parseModule(
      "extern int h(int a, int *b, int c);", Err);
  ASSERT_NE(M, nullptr) << Err;
  ASSERT_EQ(M->Externs.size(), 1u);
  EXPECT_EQ(M->Externs[0].Arity, 3u);
}

TEST(ClightParser, DeclInitializersDesugarToAssignments) {
  std::string Err;
  auto M = clight::parseModule("void f() { int a = 3; int b = a; }", Err);
  ASSERT_NE(M, nullptr) << Err;
  const clight::Function *F = M->find("f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Locals.size(), 2u);
  ASSERT_EQ(F->Body.size(), 2u);
  EXPECT_EQ(F->Body[0]->K, clight::Stmt::Kind::AssignVar);
}

// --------------------------------------------------------------------------
// x86 assembly
// --------------------------------------------------------------------------

TEST(AsmParserErrors, UnknownMnemonic) {
  std::string Err;
  EXPECT_EQ(x86::parseAsm(".entry f 0 0\nf:\n frobl %eax\n", Err), nullptr);
  EXPECT_NE(Err.find("unknown mnemonic"), std::string::npos);
}

TEST(AsmParserErrors, UnknownRegisterInMemOperand) {
  std::string Err;
  EXPECT_EQ(x86::parseAsm(".entry f 0 0\nf:\n movl (%foo), %eax\n", Err),
            nullptr);
}

TEST(AsmParserErrors, EntryWithoutLabel) {
  std::string Err;
  EXPECT_EQ(x86::parseAsm(".entry nolabel 0 0\n", Err), nullptr);
  EXPECT_NE(Err.find("no label"), std::string::npos);
}

TEST(AsmParserErrors, LockPrefixRequiresCmpxchg) {
  std::string Err;
  EXPECT_EQ(x86::parseAsm(".entry f 0 0\nf:\n lock movl $1, %eax\n", Err),
            nullptr);
  EXPECT_NE(Err.find("cmpxchgl"), std::string::npos);
}

TEST(AsmParser, OperandForms) {
  std::string Err;
  auto M = x86::parseAsm(R"(
    .data g 0
    .entry f 2 0
    f:
            movl $5, %eax
            movl $g, %ecx
            movl (%ecx), %ebx
            movl 1(%esp), %edx
            movl g, %esi
            retl
  )",
                         Err);
  ASSERT_NE(M, nullptr) << Err;
  using x86::Operand;
  EXPECT_EQ(M->Code[1].Src.K, Operand::Kind::Imm);
  EXPECT_EQ(M->Code[2].Src.K, Operand::Kind::GlobalImm);
  EXPECT_EQ(M->Code[3].Src.K, Operand::Kind::MemBase);
  EXPECT_EQ(M->Code[4].Src.K, Operand::Kind::MemBase);
  EXPECT_EQ(M->Code[4].Src.Disp, 1);
  EXPECT_EQ(M->Code[5].Src.K, Operand::Kind::MemGlobal);
}

TEST(AsmParser, EntryDirectiveFields) {
  std::string Err;
  auto M = x86::parseAsm(".entry f 7 2\nf:\n retl\n", Err);
  ASSERT_NE(M, nullptr) << Err;
  EXPECT_EQ(M->Entries.at("f").FrameSize, 7u);
  EXPECT_EQ(M->Entries.at("f").Arity, 2u);
}
